"""Tests for the synthetic generators, dataset registry and graph properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.datasets import (
    DATASETS,
    DATASET_ORDER,
    HIGH_DIAMETER_GRAPHS,
    LARGE_GRAPHS,
    clear_dataset_cache,
    list_datasets,
    load_dataset,
)
from repro.graph import properties as props


class TestFixtureGenerators:
    def test_chain_structure(self):
        g = gen.chain_graph(10)
        assert g.num_vertices == 10
        assert g.num_edges == 18
        assert g.out_degree(0) == 1
        assert g.out_degree(5) == 2

    def test_chain_requires_positive_size(self):
        with pytest.raises(ValueError):
            gen.chain_graph(0)

    def test_star_structure(self):
        g = gen.star_graph(20)
        assert g.num_vertices == 21
        assert g.out_degree(0) == 20
        assert all(g.out_degree(v) == 1 for v in range(1, 21))

    def test_complete_graph_degrees(self):
        g = gen.complete_graph(8)
        assert g.num_edges == 8 * 7
        assert all(g.out_degree(v) == 7 for v in range(8))

    def test_grid_degrees_bounded_by_four(self):
        g = gen.grid_graph(6, 7)
        assert g.num_vertices == 42
        degs = g.out_degrees()
        assert degs.max() == 4
        assert degs.min() == 2

    def test_grid_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            gen.grid_graph(0, 5)


class TestRandomGenerators:
    def test_rmat_size_and_determinism(self):
        g1 = gen.rmat_graph(8, 8, seed=5)
        g2 = gen.rmat_graph(8, 8, seed=5)
        assert g1.num_vertices == 256
        assert g1.num_edges == g2.num_edges
        assert np.array_equal(g1.out_csr.targets, g2.out_csr.targets)

    def test_rmat_different_seeds_differ(self):
        g1 = gen.rmat_graph(8, 8, seed=5)
        g2 = gen.rmat_graph(8, 8, seed=6)
        assert g1.num_edges != g2.num_edges or not np.array_equal(
            g1.out_csr.targets, g2.out_csr.targets
        )

    def test_rmat_is_skewed(self):
        g = gen.rmat_graph(11, 16, seed=9)
        stats = props.degree_stats(g)
        assert stats.skew_ratio > 10  # heavy tail

    def test_rmat_parameter_validation(self):
        with pytest.raises(ValueError):
            gen.rmat_graph(0)
        with pytest.raises(ValueError):
            gen.rmat_graph(4, 0)
        with pytest.raises(ValueError):
            gen.rmat_graph(4, 4, a=0.6, b=0.3, c=0.3)

    def test_kronecker_is_rmat_special_case(self):
        g = gen.kronecker_graph(8, 8, seed=2)
        assert g.num_vertices == 256
        assert g.num_edges > 0

    def test_power_law_mean_degree_near_target(self):
        g = gen.power_law_graph(4000, 20.0, seed=3)
        assert 10 <= g.average_degree() <= 40

    def test_power_law_skew_exceeds_uniform(self):
        pl = gen.power_law_graph(3000, 16.0, seed=3)
        uni = gen.random_uniform_graph(3000, 24000, seed=3)
        assert props.degree_stats(pl).gini > props.degree_stats(uni).gini

    def test_random_uniform_validation(self):
        with pytest.raises(ValueError):
            gen.random_uniform_graph(1, 10)

    def test_small_world_requires_even_k(self):
        with pytest.raises(ValueError):
            gen.small_world_graph(100, k=3)

    def test_small_world_degree_concentrated(self):
        g = gen.small_world_graph(500, k=4, rewire_probability=0.01, seed=1)
        stats = props.degree_stats(g)
        assert stats.mean == pytest.approx(4.0, rel=0.2)

    def test_two_level_graph_structure(self):
        g = gen.two_level_graph(3, 10, 5, seed=4)
        assert g.num_vertices == 30
        # Every vertex has at least the in-cluster degree.
        assert g.out_degrees().min() >= 9

    def test_web_graph_combines_backbone_and_overlay(self):
        g = gen.web_graph(1000, average_degree=12, seed=6)
        assert g.num_vertices == 1000
        assert g.average_degree() > 4


class TestRoadGenerator:
    def test_road_graph_low_degree(self):
        g = gen.road_network_graph(30, 30, seed=5)
        assert g.max_degree() <= 8

    def test_road_graph_high_diameter(self):
        g = gen.road_network_graph(30, 30, seed=5)
        diameter = props.diameter_estimate(g, num_sweeps=3)
        assert diameter >= 30  # at least the grid dimension

    def test_road_graph_much_higher_diameter_than_rmat(self):
        road = gen.road_network_graph(30, 30, seed=5)
        rmat = gen.rmat_graph(10, 16, seed=5)
        assert props.diameter_estimate(road) > 3 * props.diameter_estimate(rmat)


class TestDatasets:
    def test_registry_lists_the_papers_eleven_graphs(self):
        assert list_datasets() == DATASET_ORDER
        assert len(DATASET_ORDER) == 11
        assert set(DATASET_ORDER) == set(DATASETS)

    def test_every_dataset_builds_and_validates(self):
        for abbrev in DATASET_ORDER:
            graph = load_dataset(abbrev, scale=0.25)
            graph.validate()
            assert graph.num_vertices > 0
            assert graph.num_edges > 0
            assert graph.name == abbrev

    def test_meta_carries_paper_sizes(self):
        g = load_dataset("FB", scale=0.25)
        assert g.meta["paper_vertices"] == DATASETS["FB"].paper_vertices
        assert g.meta["paper_edges"] == DATASETS["FB"].paper_edges
        assert g.modeled_num_edges == DATASETS["FB"].paper_edges

    def test_directedness_matches_spec(self):
        assert load_dataset("PK", scale=0.25).directed
        assert not load_dataset("OR", scale=0.25).directed

    def test_road_analogues_have_high_diameter_class(self):
        for abbrev in HIGH_DIAMETER_GRAPHS:
            assert DATASETS[abbrev].diameter_class == "high"
            g = load_dataset(abbrev, scale=0.25)
            assert props.diameter_estimate(g) > 20

    def test_social_analogues_are_skewed(self):
        for abbrev in ("FB", "TW", "LJ"):
            g = load_dataset(abbrev, scale=0.25)
            assert props.degree_stats(g).skew_ratio > 10

    def test_large_graph_list_is_subset(self):
        assert set(LARGE_GRAPHS) <= set(DATASET_ORDER)

    def test_cache_returns_same_object(self):
        clear_dataset_cache()
        a = load_dataset("RC", scale=0.25)
        b = load_dataset("RC", scale=0.25)
        assert a is b
        c = load_dataset("RC", scale=0.25, cache=False)
        assert c is not a

    def test_scale_changes_size(self):
        small = load_dataset("LJ", scale=0.25, cache=False)
        large = load_dataset("LJ", scale=0.5, cache=False)
        assert large.num_vertices > small.num_vertices

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            DATASETS["FB"].build(0.0)


class TestProperties:
    def test_degree_stats_on_star(self, star_graph):
        stats = props.degree_stats(star_graph)
        assert stats.max == 200
        assert stats.min == 1
        assert stats.gini > 0.4

    def test_degree_stats_on_regular_graph(self):
        g = gen.complete_graph(10)
        stats = props.degree_stats(g)
        assert stats.gini == pytest.approx(0.0, abs=1e-9)
        assert stats.skew_ratio == pytest.approx(1.0)

    def test_degree_stats_empty_graph(self):
        from repro.graph.csr import CSRGraph

        stats = props.degree_stats(CSRGraph.empty(3))
        assert stats.max == 0 and stats.mean == 0.0

    def test_bfs_levels_chain(self, chain_graph):
        levels = props.bfs_levels(chain_graph, 0)
        assert levels[0] == 0
        assert levels[-1] == chain_graph.num_vertices - 1

    def test_bfs_levels_unreachable(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(4, [(0, 1)], weights=[1])
        levels = props.bfs_levels(g, 0)
        assert levels[2] == -1 and levels[3] == -1

    def test_bfs_levels_source_validation(self, chain_graph):
        with pytest.raises(ValueError):
            props.bfs_levels(chain_graph, 10_000)

    def test_diameter_estimate_chain(self, chain_graph):
        assert props.diameter_estimate(chain_graph, num_sweeps=3) == 63

    def test_eccentricity_le_diameter(self, grid_graph):
        ecc = props.eccentricity_estimate(grid_graph, 0)
        diam = props.diameter_estimate(grid_graph, num_sweeps=4)
        assert ecc <= diam + 1

    def test_connected_components_clusters(self):
        g = gen.two_level_graph(3, 8, 0, seed=1)
        labels = props.connected_components(g)
        assert np.unique(labels).size == 3

    def test_largest_component_fraction_connected(self, grid_graph):
        assert props.largest_component_fraction(grid_graph) == pytest.approx(1.0)

    def test_summarize_keys(self, rmat_graph):
        summary = props.summarize(rmat_graph)
        for key in ("vertices", "edges", "avg_degree", "max_degree",
                    "degree_gini", "diameter_lb", "csr_mb"):
            assert key in summary
