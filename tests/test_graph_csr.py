"""Tests for the CSR graph structure, the edge-list view and graph I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph, GraphFormatError, union_graph
from repro.graph.edge_list import EdgeListGraph
from repro.graph.io import (
    load_edge_list_text,
    load_npz,
    save_edge_list_text,
    save_npz,
)


class TestConstruction:
    def test_from_edges_basic_counts(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)], weights=[1, 2, 3])
        assert g.num_vertices == 4
        assert g.num_edges == 6  # undirected: each edge stored both ways

    def test_directed_keeps_one_direction(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2)], weights=[1, 1], directed=True)
        assert g.num_edges == 2
        assert g.out_degree(0) == 1
        assert g.in_degree(0) == 0
        assert g.in_degree(1) == 1

    def test_undirected_in_equals_out(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2)], weights=[1, 1])
        assert g.in_csr is g.out_csr

    def test_directed_in_csr_is_lazy_and_cached(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2)], weights=[1, 1], directed=True)
        assert not g.in_csr_built
        first = g.in_csr  # forces the transpose build
        assert g.in_csr_built
        assert g.in_csr is first  # cached, not rebuilt

    def test_lazy_transpose_matches_explicit_reverse_build(self, directed_graph):
        from repro.graph.csr import transpose_csr

        rev = transpose_csr(directed_graph.out_csr)
        lazy = directed_graph.in_csr
        assert np.array_equal(lazy.offsets, rev.offsets)
        assert np.array_equal(lazy.targets, rev.targets)
        assert np.array_equal(lazy.weights, rev.weights)
        # Transposing twice round-trips to the out-CSR exactly.
        back = transpose_csr(lazy)
        assert np.array_equal(back.offsets, directed_graph.out_csr.offsets)
        assert np.array_equal(back.targets, directed_graph.out_csr.targets)
        assert np.array_equal(back.weights, directed_graph.out_csr.weights)

    def test_csr_bytes_does_not_force_transpose(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2)], weights=[1, 1], directed=True)
        expected = 2 * ((4 + 1) * 8 + 2 * 4 + 2 * 4)
        assert g.csr_bytes() == expected
        assert not g.in_csr_built

    def test_self_loops_removed_by_default(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1)], weights=[1, 1])
        assert g.num_edges == 2
        assert 0 not in g.out_neighbors(0)

    def test_self_loops_kept_when_allowed(self):
        g = CSRGraph.from_edges(3, [(0, 0)], weights=[1], allow_self_loops=True,
                                directed=True)
        assert g.num_edges == 1

    def test_duplicate_edges_deduplicated_keeping_min_weight(self):
        g = CSRGraph.from_edges(
            3, [(0, 1), (0, 1)], weights=[5.0, 2.0], directed=True
        )
        assert g.num_edges == 1
        assert g.out_weights(0)[0] == pytest.approx(2.0)

    def test_duplicates_kept_when_dedup_disabled(self):
        g = CSRGraph.from_edges(
            3, [(0, 1), (0, 1)], weights=[5.0, 2.0], directed=True, dedup=False
        )
        assert g.num_edges == 2

    def test_random_weights_are_deterministic(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        g1 = CSRGraph.from_edges(3, edges, weight_seed=42)
        g2 = CSRGraph.from_edges(3, edges, weight_seed=42)
        assert np.array_equal(g1.out_csr.weights, g2.out_csr.weights)

    def test_random_weights_positive(self):
        g = CSRGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)], weight_seed=7)
        assert np.all(g.out_csr.weights >= 1)

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.max_degree() == 0
        assert g.average_degree() == 0.0

    def test_vertex_id_out_of_range_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges(3, [(0, 5)], weights=[1])

    def test_negative_vertex_id_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges(3, [(-1, 0)], weights=[1])

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges(3, [(0, 1)], weights=[-1.0])

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges(3, [(0, 1), (1, 2)], weights=[1.0])

    def test_zero_vertices_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges(0, [], weights=[])


class TestAccessors:
    def test_neighbors_sorted_within_vertex(self, tiny_graph):
        for v in range(tiny_graph.num_vertices):
            nbrs = tiny_graph.out_neighbors(v)
            assert np.all(np.diff(nbrs.astype(np.int64)) >= 0)

    def test_degrees_sum_to_edge_count(self, rmat_graph):
        assert int(rmat_graph.out_degrees().sum()) == rmat_graph.num_edges

    def test_figure1_degrees(self, tiny_graph):
        # Vertex e (index 4) has 6 neighbours in Figure 1.
        assert tiny_graph.out_degree(4) == 6
        assert tiny_graph.out_degree(8) == 1

    def test_edges_iterator_matches_counts(self, tiny_graph):
        edges = list(tiny_graph.edges())
        assert len(edges) == tiny_graph.num_edges
        for s, d, w in edges:
            assert 0 <= s < 9 and 0 <= d < 9 and w > 0

    def test_max_and_average_degree(self, star_graph):
        assert star_graph.max_degree() == 200
        assert star_graph.average_degree() == pytest.approx(
            star_graph.num_edges / star_graph.num_vertices
        )

    def test_weights_align_with_neighbors(self, tiny_graph):
        nbrs = tiny_graph.out_neighbors(0)
        weights = tiny_graph.out_weights(0)
        assert nbrs.shape == weights.shape
        lookup = dict(zip(nbrs.tolist(), weights.tolist()))
        assert lookup[1] == pytest.approx(5.0)
        assert lookup[3] == pytest.approx(1.0)

    def test_to_edge_array_roundtrip(self, rmat_graph):
        arr = rmat_graph.to_edge_array()
        assert arr.shape == (rmat_graph.num_edges, 2)
        rebuilt = CSRGraph.from_edges(
            rmat_graph.num_vertices, arr, rmat_graph.out_csr.weights, directed=True
        )
        assert rebuilt.num_edges == rmat_graph.num_edges

    def test_reversed_directed_graph(self, directed_graph):
        rev = directed_graph.reversed()
        assert rev.num_edges == directed_graph.num_edges
        assert np.array_equal(rev.out_degrees(), directed_graph.in_degrees())

    def test_reversed_undirected_is_identity(self, tiny_graph):
        assert tiny_graph.reversed() is tiny_graph

    def test_validate_passes_on_generated_graphs(self, rmat_graph, directed_graph):
        rmat_graph.validate()
        directed_graph.validate()


class TestMemoryAccounting:
    def test_csr_bytes_positive_and_scales(self, rmat_graph, tiny_graph):
        assert rmat_graph.csr_bytes() > tiny_graph.csr_bytes() > 0

    def test_directed_graph_stores_both_directions(self, directed_graph):
        one_direction = (
            (directed_graph.num_vertices + 1) * 8 + directed_graph.num_edges * 8
        )
        assert directed_graph.csr_bytes() == 2 * one_direction

    def test_edge_list_bytes_exceeds_csr_for_sparse_graphs(self, road_graph):
        # The paper's motivation for CSR: the edge list costs ~50% more.
        assert road_graph.edge_list_bytes() > 0.9 * road_graph.csr_bytes()

    def test_modeled_sizes_default_to_actual(self, tiny_graph):
        assert tiny_graph.modeled_num_vertices == tiny_graph.num_vertices
        assert tiny_graph.modeled_num_edges == tiny_graph.num_edges
        assert tiny_graph.modeled_edge_scale() == pytest.approx(1.0)

    def test_modeled_sizes_from_meta(self, tiny_graph):
        tiny_graph.meta["paper_vertices"] = 1_000_000
        tiny_graph.meta["paper_edges"] = 50_000_000
        assert tiny_graph.modeled_num_vertices == 1_000_000
        assert tiny_graph.modeled_num_edges == 50_000_000
        assert tiny_graph.modeled_csr_bytes() > tiny_graph.csr_bytes()
        assert tiny_graph.modeled_edge_scale() > 1.0


class TestUnionGraph:
    def test_union_combines_edges(self):
        a = CSRGraph.from_edges(4, [(0, 1)], weights=[1])
        b = CSRGraph.from_edges(4, [(2, 3)], weights=[1])
        u = union_graph([a, b])
        assert u.num_edges == 4

    def test_union_requires_matching_vertex_count(self):
        a = CSRGraph.from_edges(4, [(0, 1)], weights=[1])
        b = CSRGraph.from_edges(5, [(2, 3)], weights=[1])
        with pytest.raises(GraphFormatError):
            union_graph([a, b])

    def test_union_of_nothing_rejected(self):
        with pytest.raises(GraphFormatError):
            union_graph([])


class TestEdgeListGraph:
    def test_from_csr_preserves_counts(self, rmat_graph):
        el = EdgeListGraph.from_csr(rmat_graph)
        assert el.num_edges == rmat_graph.num_edges
        assert el.num_vertices == rmat_graph.num_vertices

    def test_nbytes_is_twelve_per_edge(self, rmat_graph):
        el = EdgeListGraph.from_csr(rmat_graph)
        assert el.nbytes() == 12 * el.num_edges

    def test_edges_iterator(self, tiny_graph):
        el = EdgeListGraph.from_csr(tiny_graph)
        edges = list(el.edges())
        assert len(edges) == tiny_graph.num_edges

    def test_shards_partition_all_edges(self, rmat_graph):
        el = EdgeListGraph.from_csr(rmat_graph)
        shards = el.shards(8)
        assert sum(s.size for s in shards) == el.num_edges
        # Shards are disjoint.
        all_ids = np.concatenate(shards)
        assert np.unique(all_ids).size == el.num_edges

    def test_shards_respect_destination_ranges(self, rmat_graph):
        el = EdgeListGraph.from_csr(rmat_graph)
        shards = el.shards(4)
        bounds = np.linspace(0, el.num_vertices, 5).astype(np.int64)
        for i, shard in enumerate(shards):
            if shard.size == 0:
                continue
            dsts = el.targets[shard]
            assert dsts.min() >= bounds[i]
            assert dsts.max() <= bounds[i + 1]

    def test_invalid_shard_count_rejected(self, tiny_graph):
        el = EdgeListGraph.from_csr(tiny_graph)
        with pytest.raises(ValueError):
            el.shards(0)


class TestGraphIO:
    def test_npz_roundtrip_undirected(self, tiny_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(tiny_graph, path)
        loaded = load_npz(path)
        assert loaded.num_vertices == tiny_graph.num_vertices
        assert loaded.num_edges == tiny_graph.num_edges
        assert np.array_equal(loaded.out_csr.targets, tiny_graph.out_csr.targets)
        assert np.allclose(loaded.out_csr.weights, tiny_graph.out_csr.weights)
        assert not loaded.directed

    def test_npz_roundtrip_directed(self, directed_graph, tmp_path):
        path = tmp_path / "d.npz"
        save_npz(directed_graph, path)
        loaded = load_npz(path)
        assert loaded.directed
        assert np.array_equal(loaded.in_csr.offsets, directed_graph.in_csr.offsets)

    def test_text_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list_text(tiny_graph, path)
        loaded = load_edge_list_text(path, directed=True,
                                     num_vertices=tiny_graph.num_vertices)
        assert loaded.num_edges == tiny_graph.num_edges

    def test_text_parses_comments_and_defaults(self, tmp_path):
        path = tmp_path / "simple.txt"
        path.write_text("# comment\n0 1\n1 2 7.5\n\n")
        g = load_edge_list_text(path, directed=True)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.out_weights(1)[0] == pytest.approx(7.5)

    def test_text_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        from repro.graph.csr import GraphFormatError

        with pytest.raises(GraphFormatError):
            load_edge_list_text(path)

    def test_text_empty_file_gives_empty_graph(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        g = load_edge_list_text(path, num_vertices=4)
        assert g.num_vertices == 4
        assert g.num_edges == 0
