"""Lane-aware direction selection with batch splitting.

The batched engine scores every lane's own frontier with the traffic model
each iteration and, when lane interests diverge from the union decision
past the configured margin, splits the batch into a push-leaning and a
pull-leaning sub-batch (docs/batching.md, "Lane-aware direction
selection"). These tests pin the contract:

* per-lane results are bit-identical to K independent runs under the
  automatic policy AND under *every* forced split schedule
  (``EngineConfig.split_schedule``), including schedules that split the
  batch into arbitrary direction-assigned lane groups every iteration;
* on a road graph the lane-aware batch scans fewer in-edges than
  decide-once batching (the PR-3 known limit this feature closes);
* the split policy itself: agreement never splits, divergence past the
  margin splits into push-first groups, an infinite margin never splits,
  and lanes re-merge when their decisions reconverge;
* sub-batch frontier views remap the packed lane bitmask correctly;
* heterogeneous per-lane algorithm parameters (per-lane SSSP delta) ride
  in sub-batches and match the corresponding single runs;
* forced per-iteration direction schedules
  (``EngineConfig.forced_direction_schedule``) are honoured and preserve
  values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP
from repro.core.direction import (
    BatchDirectionPolicy,
    Direction,
    SubBatchPlan,
)
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.core.frontier import BatchedFrontier
from repro.core.jit import JITTaskManager
from repro.graph import generators as gen


@pytest.fixture(scope="module")
def rmat():
    return gen.rmat_graph(9, 8, seed=7, name="rmat9")


@pytest.fixture(scope="module")
def road():
    return gen.road_network_graph(24, 24, seed=11, name="road")


def _top_sources(graph, k):
    degrees = graph.out_degrees()
    return [int(v) for v in np.argsort(-degrees, kind="stable")[:k]]


def _random_split_schedule(seed):
    """Random per-iteration partition into a push and a pull group."""
    rng = np.random.default_rng(seed)

    def schedule(iteration, live):
        if len(live) < 2 or rng.random() < 0.25:
            return None  # fall through to the automatic policy
        cut = int(rng.integers(1, len(live)))
        order = list(rng.permutation(live))
        return [
            (Direction.PUSH, sorted(int(v) for v in order[:cut])),
            (Direction.PULL, sorted(int(v) for v in order[cut:])),
        ]

    return schedule


# ----------------------------------------------------------------------
# The split policy
# ----------------------------------------------------------------------
class TestBatchDirectionPolicy:
    def _policy(self, margin=0.5, num_lanes=4, total_edges=1000):
        return BatchDirectionPolicy(
            total_edges=total_edges, num_lanes=num_lanes, margin=margin
        )

    def test_agreement_never_splits(self):
        policy = self._policy()
        # All lanes far below the pull threshold: everyone pushes.
        decision = policy.plan(
            [0, 1, 2],
            {0: 3, 1: 4, 2: 5},
            {0: 1, 1: 1, 2: 1},
            lambda lane: (1000, 100),
            Direction.PULL,  # the union crossed the threshold; lanes did not
        )
        assert not decision.split
        assert decision.reason == "agree"
        assert decision.groups == (
            SubBatchPlan(Direction.PUSH, (0, 1, 2)),
        )
        assert policy.splits() == 0

    def test_divergence_past_margin_splits_push_group_first(self):
        policy = self._policy(margin=0.01)
        # Lane 0 stays tiny (push); lanes 1, 2 cross the 5% threshold.
        decision = policy.plan(
            [0, 1, 2],
            {0: 2, 1: 200, 2: 300},
            {0: 1, 1: 40, 2: 50},
            # A cheap pull: scanning 100 in-edges at 10 candidates.
            lambda lane: (100, 10),
            Direction.PULL,
        )
        assert decision.split
        assert decision.reason == "split"
        assert decision.benefit_ops > 0
        assert decision.groups[0] == SubBatchPlan(Direction.PUSH, (0,))
        assert decision.groups[1] == SubBatchPlan(Direction.PULL, (1, 2))
        assert policy.splits() == 1

    def test_infinite_margin_never_splits(self):
        policy = self._policy(margin=1e12)
        decision = policy.plan(
            [0, 1],
            {0: 2, 1: 500},
            {0: 1, 1: 60},
            lambda lane: (100, 10),
            Direction.PULL,
        )
        assert not decision.split
        assert decision.reason == "margin"
        # Below the margin the whole batch follows the union decision.
        assert decision.groups == (SubBatchPlan(Direction.PULL, (0, 1)),)

    def test_lanes_remerge_when_decisions_reconverge(self):
        policy = self._policy(margin=0.01, total_edges=1000)
        diverged = policy.plan(
            [0, 1],
            {0: 2, 1: 500},
            {0: 1, 1: 60},
            lambda lane: (50, 10),
            Direction.PULL,
        )
        assert diverged.split
        # Lane 1's frontier collapses below the push threshold: with the
        # per-lane hysteresis it swings back to push and the batch merges.
        merged = policy.plan(
            [0, 1],
            {0: 2, 1: 3},
            {0: 1, 1: 1},
            lambda lane: (50, 10),
            Direction.PULL,
        )
        assert not merged.split
        assert merged.groups == (SubBatchPlan(Direction.PUSH, (0, 1)),)
        assert policy.split_history == [True, False]

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError, match="margin"):
            self._policy(margin=-0.1)

    def test_forced_groups_advance_lane_selectors(self):
        # A forced schedule (EngineConfig.split_schedule) must keep the
        # per-lane hysteresis in step with what executed, exactly like
        # DirectionSelector.force does for a single run.
        policy = self._policy(margin=0.0, num_lanes=2)
        policy.force([
            SubBatchPlan(Direction.PUSH, (0,)),
            SubBatchPlan(Direction.PULL, (1,)),
        ])
        assert policy.lane_selectors[0].current is Direction.PUSH
        assert policy.lane_selectors[1].current is Direction.PULL
        assert policy.split_history == [True]
        # Lane 1 now plans from pull-side hysteresis: a mid-threshold
        # share (between to_push and to_pull) keeps it pulling, so with a
        # zero margin the next automatic plan splits along the forced
        # grouping instead of starting from scratch.
        decision = policy.plan(
            [0, 1],
            {0: 2, 1: 30},     # shares 0.002 and 0.03 of 1000 edges
            {0: 1, 1: 5},
            lambda lane: (10, 3),  # a cheap pruned gather worklist
            Direction.PUSH,
        )
        assert policy.lane_selectors[1].current is Direction.PULL
        assert decision.split
        assert decision.groups[1] == SubBatchPlan(Direction.PULL, (1,))


# ----------------------------------------------------------------------
# Sub-batch frontier views
# ----------------------------------------------------------------------
class TestSubBatchView:
    def test_lane_remapping(self):
        lanes = [
            np.array([3, 1, 7], dtype=np.int64),
            np.array([2], dtype=np.int64),
            np.array([7, 9], dtype=np.int64),
        ]
        bf = BatchedFrontier.from_lanes(lanes)
        sub = bf.sub_batch([2, 0])
        assert np.array_equal(sub.vertices, [1, 3, 7, 9])
        assert sub.num_lanes == 2
        assert sub.lane_ids == (2, 0)
        assert np.array_equal(sub.lane_vertices(0), [7, 9])   # global lane 2
        assert np.array_equal(sub.lane_vertices(1), [1, 3, 7])  # global lane 0
        assert sub.global_lane(0) == 2
        assert sub.global_lane(1) == 0
        # The full batch maps local to global as the identity.
        assert bf.global_lane(1) == 1

    def test_sub_batch_drops_other_lanes_vertices(self):
        bf = BatchedFrontier.from_lanes(
            [np.array([0], dtype=np.int64), np.array([5], dtype=np.int64)]
        )
        sub = bf.sub_batch([1])
        assert np.array_equal(sub.vertices, [5])

    def test_nested_sub_batch_rejected(self):
        bf = BatchedFrontier.from_lanes([np.array([1], dtype=np.int64)] * 2)
        sub = bf.sub_batch([0])
        with pytest.raises(ValueError, match="sub_batch"):
            sub.sub_batch([0])

    def test_out_of_range_lane_rejected(self):
        bf = BatchedFrontier.from_lanes([np.array([1], dtype=np.int64)])
        with pytest.raises(IndexError):
            bf.sub_batch([3])


# ----------------------------------------------------------------------
# Bit-identical results under every split schedule
# ----------------------------------------------------------------------
class TestSplitScheduleEquivalence:
    @pytest.mark.parametrize("graph_name", ["rmat", "road"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_schedules_match_single_runs(
        self, graph_name, seed, rmat, road
    ):
        graph = {"rmat": rmat, "road": road}[graph_name]
        sources = _top_sources(graph, 6)
        cfg = EngineConfig(split_schedule=_random_split_schedule(seed))
        batch = SIMDXEngine(graph, config=cfg).run_batch(BFS(), sources)
        assert not batch.failed, batch.failure_reason
        assert batch.extra["lane_splits"] > 0  # schedules actually split
        for lane, source in enumerate(sources):
            single = SIMDXEngine(graph).run(BFS(source=source))
            assert np.array_equal(batch.values[lane], single.values), (
                f"lane {lane} diverged under schedule seed {seed}"
            )
            assert batch.lane_iterations[lane] == single.iterations

    def test_sssp_metadata_bit_identical_under_schedules(self, road):
        sources = _top_sources(road, 6)
        cfg = EngineConfig(split_schedule=_random_split_schedule(7))
        batch = SIMDXEngine(road, config=cfg).run_batch(SSSP(), sources)
        assert not batch.failed
        for lane, source in enumerate(sources):
            single = SIMDXEngine(road).run(SSSP(source=source))
            assert np.array_equal(batch.metadata[lane], single.values)

    def test_all_pull_and_all_push_schedules(self, rmat):
        # Degenerate single-group schedules exercising the forced-direction
        # path through split_schedule itself.
        sources = _top_sources(rmat, 4)
        for direction in (Direction.PUSH, Direction.PULL):
            cfg = EngineConfig(
                split_schedule=lambda it, live: [(direction, list(live))]
            )
            batch = SIMDXEngine(rmat, config=cfg).run_batch(BFS(), sources)
            for lane, source in enumerate(sources):
                single = SIMDXEngine(rmat).run(BFS(source=source))
                assert np.array_equal(batch.values[lane], single.values)

    def test_invalid_schedule_partition_rejected(self, rmat):
        sources = _top_sources(rmat, 4)
        cfg = EngineConfig(
            split_schedule=lambda it, live: [(Direction.PUSH, live[:1])]
        )
        with pytest.raises(ValueError, match="partition"):
            SIMDXEngine(rmat, config=cfg).run_batch(BFS(), sources)


# ----------------------------------------------------------------------
# The automatic policy inside the engine
# ----------------------------------------------------------------------
class TestAutoLaneAwareSplit:
    def test_values_identical_with_and_without_lane_awareness(self, road):
        sources = _top_sources(road, 16)
        on = SIMDXEngine(road).run_batch(SSSP(), sources)
        off = SIMDXEngine(
            road, config=EngineConfig(lane_aware_split=False)
        ).run_batch(SSSP(), sources)
        assert not on.failed and not off.failed
        assert np.array_equal(on.values, off.values)

    def test_road_sssp_scans_fewer_in_edges_than_decide_once(self, road):
        # The PR-3 known limit: the union crosses the pull threshold before
        # any single lane would, so decide-once batching over-scans
        # in-edges on road shapes. Lane-aware selection closes the gap.
        sources = _top_sources(road, 16)
        on = SIMDXEngine(road).run_batch(SSSP(), sources)
        off = SIMDXEngine(
            road, config=EngineConfig(lane_aware_split=False)
        ).run_batch(SSSP(), sources)
        assert on.extra["pull_edges_scanned"] < off.extra["pull_edges_scanned"]
        assert on.extra["union_edges_walked"] < off.extra["union_edges_walked"]

    def test_split_iterations_recorded_and_traced(self, road):
        sources = _top_sources(road, 16)
        batch = SIMDXEngine(
            road, config=EngineConfig(split_margin=0.1)
        ).run_batch(SSSP(), sources)
        splits = batch.extra["split_iterations"]
        assert batch.extra["lane_splits"] == len(splits)
        assert splits, "expected at least one split iteration on road SSSP"
        # A split iteration contributes one record per sub-batch and a
        # joined direction-trace entry (push-leaning group first).
        for iteration in splits:
            group_records = [
                r for r in batch.iteration_records if r.iteration == iteration
            ]
            assert len(group_records) == 2
            assert [r.direction for r in group_records] == ["push", "pull"]
            assert batch.direction_trace[iteration - 1] == "push+pull"
        # Non-split iterations keep the single-direction trace entries.
        assert all(
            "+" not in batch.direction_trace[i - 1]
            for i in range(1, batch.iterations + 1)
            if i not in splits
        )

    def test_forced_direction_disables_the_policy(self, road):
        sources = _top_sources(road, 8)
        cfg = EngineConfig(
            direction_auto=False, forced_direction=Direction.PUSH
        )
        batch = SIMDXEngine(road, config=cfg).run_batch(BFS(), sources)
        assert batch.extra["lane_splits"] == 0
        assert set(batch.direction_trace) == {"push"}


# ----------------------------------------------------------------------
# Heterogeneous per-lane algorithm parameters
# ----------------------------------------------------------------------
class TestLaneParams:
    def test_per_lane_sssp_delta_matches_single_runs(self, rmat):
        sources = _top_sources(rmat, 4)
        deltas = [None, 5.0, 10.0, 20.0]
        batch = SIMDXEngine(rmat).run_batch(
            SSSP(), sources, lane_params=[{"delta": d} for d in deltas]
        )
        assert not batch.failed
        for lane, (source, delta) in enumerate(zip(sources, deltas)):
            single = SIMDXEngine(rmat).run(SSSP(source=source, delta=delta))
            assert np.array_equal(batch.values[lane], single.values), (
                f"lane {lane} (delta={delta}) diverged"
            )

    def test_per_lane_params_under_forced_split_schedule(self, road):
        sources = _top_sources(road, 4)
        deltas = [None, 8.0, 16.0, None]
        cfg = EngineConfig(split_schedule=_random_split_schedule(3))
        batch = SIMDXEngine(road, config=cfg).run_batch(
            SSSP(), sources, lane_params=[{"delta": d} for d in deltas]
        )
        for lane, (source, delta) in enumerate(zip(sources, deltas)):
            single = SIMDXEngine(road).run(SSSP(source=source, delta=delta))
            assert np.array_equal(batch.values[lane], single.values)

    def test_unknown_parameter_rejected(self, rmat):
        with pytest.raises(ValueError, match="unknown algorithm parameter"):
            SIMDXEngine(rmat).run_batch(
                BFS(), [0, 1], lane_params=[{"nope": 1}, {}]
            )

    def test_length_mismatch_rejected(self, rmat):
        with pytest.raises(ValueError, match="lane_params"):
            SIMDXEngine(rmat).run_batch(BFS(), [0, 1], lane_params=[{}])


# ----------------------------------------------------------------------
# Forced per-iteration direction schedules
# ----------------------------------------------------------------------
class TestForcedDirectionSchedule:
    def test_schedule_is_honoured_and_last_entry_repeats(self, rmat):
        schedule = [Direction.PUSH, Direction.PULL, Direction.PUSH]
        cfg = EngineConfig(
            direction_auto=False, forced_direction_schedule=schedule
        )
        result = SIMDXEngine(rmat, config=cfg).run(BFS(source=0))
        expected = [d.value for d in schedule]
        got = result.direction_trace
        assert got[: len(expected)] == expected[: len(got)]
        assert all(d == "push" for d in got[len(expected):])
        auto = SIMDXEngine(rmat).run(BFS(source=0))
        assert np.array_equal(result.values, auto.values)

    def test_schedule_requires_manual_mode(self):
        with pytest.raises(ValueError, match="direction_auto"):
            EngineConfig(forced_direction_schedule=[Direction.PUSH])

    def test_schedule_excludes_forced_direction(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            EngineConfig(
                direction_auto=False,
                forced_direction=Direction.PUSH,
                forced_direction_schedule=[Direction.PULL],
            )

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            EngineConfig(direction_auto=False, forced_direction_schedule=[])


# ----------------------------------------------------------------------
# Per-sub-batch JIT streams
# ----------------------------------------------------------------------
class TestJITFork:
    def test_fork_clones_controller_state(self):
        jit = JITTaskManager(overflow_threshold=8)
        jit._use_ballot = True
        jit._last_direction = Direction.PULL
        fork = jit.fork()
        assert fork.current_filter_name == "ballot"
        assert fork.last_direction is Direction.PULL
        assert fork.overflow_threshold == jit.overflow_threshold
        assert fork.decisions == [] and fork.decisions is not jit.decisions

    def test_split_run_reports_pre_armed_iterations_sorted_unique(self, road):
        sources = _top_sources(road, 16)
        batch = SIMDXEngine(road).run_batch(SSSP(), sources)
        pre_armed = batch.extra["jit_pre_armed_iterations"]
        assert pre_armed == sorted(set(pre_armed))
