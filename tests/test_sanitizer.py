"""Tests for the runtime ACC sanitizer (``repro.analysis.sanitizer``).

Two halves mirror the two claims the sanitizer makes:

* **zero findings on correct code** - running representative algorithms
  (single-source and batched, push/pull/auto, split on/off) with
  ``EngineConfig(sanitize=True)`` must report a clean run *and* produce
  bit-identical values to the unsanitized run (the sanitizer is
  shadow-by-recording: it never re-executes hooks);
* **each seeded defect is caught with the expected violation class** -
  engine/algorithm subclasses that re-introduce the bug classes the ACC
  model is supposed to rule out (raw last-write-wins scatter, stray
  metadata writes, impure hooks, CSR mutation through a stale alias,
  overlapping lane groups, broken accounting, unregistered extra keys)
  must raise :class:`SanitizerError` with the matching
  :class:`ViolationKind`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    SSSP,
    BeliefPropagation,
    KCore,
    PageRank,
    SpMV,
    WCC,
)
from repro.analysis import registry as extra_keys
from repro.analysis.sanitizer import (
    RuntimeSanitizer,
    SanitizerError,
    SanitizerViolation,
    ViolationKind,
)
from repro.core.direction import Direction, SubBatchPlan
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.core.metrics import IterationRecord
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph


def _sanitize_config(**kwargs) -> EngineConfig:
    return EngineConfig(sanitize=True, **kwargs)


def _kinds(err: SanitizerError) -> set:
    return {v.kind for v in err.violations}


# ----------------------------------------------------------------------
# Clean runs: zero findings, bit-identical values
# ----------------------------------------------------------------------
CLEAN_CASES = {
    "bfs": lambda: BFS(source=0),
    "sssp": lambda: SSSP(source=0),
    "sssp-delta": lambda: SSSP(source=0, delta=8.0),
    "pagerank": lambda: PageRank(tolerance=1e-6),
    "kcore": lambda: KCore(k=4),
    "wcc": lambda: WCC(),
    "spmv": lambda: SpMV(x_seed=7),
    "bp": lambda: BeliefPropagation(num_iterations=5),
}


@pytest.mark.parametrize("name", sorted(CLEAN_CASES))
@pytest.mark.parametrize("direction", ["auto", "push", "pull"])
def test_sanitized_run_clean_and_bit_identical(name, direction):
    graph = gen.rmat_graph(7, 8, seed=31, name="san-rmat")
    kwargs = (
        {}
        if direction == "auto"
        else {"direction_auto": False, "forced_direction": Direction(direction)}
    )
    make = CLEAN_CASES[name]
    plain = SIMDXEngine(graph, config=EngineConfig(**kwargs)).run(make())
    sanitized = SIMDXEngine(graph, config=_sanitize_config(**kwargs)).run(make())
    assert not sanitized.failed, sanitized.failure_reason
    assert np.array_equal(plain.values, sanitized.values)
    report = sanitized.extra[extra_keys.SANITIZER]
    assert report["clean"]
    assert report["violations"] == []
    assert report["checks"]["metadata_compare"] > 0
    assert report["checks"]["records"] > 0


@pytest.mark.parametrize("k", [1, 4, 16])
@pytest.mark.parametrize(
    "mode_kwargs",
    [{"split_margin": 0.0}, {"lane_aware_split": False}],
    ids=["split-on", "split-off"],
)
def test_sanitized_batch_clean_and_bit_identical(k, mode_kwargs):
    graph = gen.random_uniform_graph(220, 1500, seed=77, name="san-uniform")
    candidates = np.nonzero(graph.out_degrees() > 0)[0]
    sources = [int(v) for v in candidates[:k]]
    plain = SIMDXEngine(graph, config=EngineConfig(**mode_kwargs)).run_batch(
        SSSP(), sources
    )
    sanitized = SIMDXEngine(
        graph, config=_sanitize_config(**mode_kwargs)
    ).run_batch(SSSP(), sources)
    assert not sanitized.failed, sanitized.failure_reason
    for lane in range(len(sources)):
        assert np.array_equal(plain.values[lane], sanitized.values[lane])
    report = sanitized.extra[extra_keys.SANITIZER]
    assert report["clean"]
    assert report["checks"]["group_plans"] > 0


# ----------------------------------------------------------------------
# Seeded defects: each bug class raises with the expected kind
# ----------------------------------------------------------------------
def _diamond_graph() -> CSRGraph:
    """0->{1,2}->3 plus a spur to 4; vertex 5 is isolated (no in-edges),
    so any write to it must come from outside the combine pipeline."""
    edges = [(0, 1), (0, 2), (1, 3), (2, 3), (0, 4)]
    weights = [1.0, 1.0, 1.0, 5.0, 9.0]
    return CSRGraph.from_edges(
        6, edges, weights, directed=True, name="san-diamond"
    )


def _parallel_edge_graph() -> CSRGraph:
    """Two parallel 0->1 edges: the very first frontier expansion sends two
    concurrent offers to vertex 1, so a combine bypass is a write-write
    conflict from iteration 1."""
    edges = [(0, 1), (0, 1), (0, 2)]
    weights = [1.0, 5.0, 2.0]
    return CSRGraph.from_edges(
        3, edges, weights, directed=True, dedup=False, name="san-parallel"
    )


class RawScatterEngine(SIMDXEngine):
    """Applies updates with a raw last-write-wins scatter - the data race
    the CombineOp reduction exists to prevent."""

    def _combine_and_apply(self, algorithm, metadata, updates, dst):
        before = metadata[dst].copy()
        metadata[dst] = updates
        return np.unique(dst[metadata[dst] != before])


def test_raw_scatter_flagged_as_write_write_conflict():
    engine = RawScatterEngine(
        _parallel_edge_graph(),
        config=_sanitize_config(
            direction_auto=False, forced_direction=Direction.PUSH
        ),
    )
    with pytest.raises(SanitizerError) as exc:
        engine.run(SSSP(source=0))
    assert ViolationKind.WRITE_WRITE_CONFLICT in _kinds(exc.value)


class StrayWriteEngine(SIMDXEngine):
    """Combines correctly, then pokes a vertex no update touched."""

    def _combine_and_apply(self, algorithm, metadata, updates, dst):
        changed = super()._combine_and_apply(algorithm, metadata, updates, dst)
        metadata[metadata.shape[0] - 1] = -7.0  # vertex 5 has no in-edges
        return changed


def test_stray_write_flagged_as_non_combined_write():
    engine = StrayWriteEngine(
        _diamond_graph(),
        config=_sanitize_config(
            direction_auto=False, forced_direction=Direction.PUSH
        ),
    )
    with pytest.raises(SanitizerError) as exc:
        engine.run(SSSP(source=0))
    assert _kinds(exc.value) == {ViolationKind.NON_COMBINED_WRITE}
    (violation,) = exc.value.violations
    assert 5 in violation.vertices


class ImpureGatherMaskBFS(BFS):
    """gather_mask that mutates the metadata it was handed."""

    def gather_mask(self, metadata, graph, frontier=None):
        metadata[0] = 99.0
        return np.ones(metadata.shape[0], dtype=bool)


def test_impure_hook_flagged():
    graph = gen.random_uniform_graph(120, 700, seed=13, name="san-impure")
    src = int(np.nonzero(graph.out_degrees() > 0)[0][0])
    engine = SIMDXEngine(
        graph,
        config=_sanitize_config(
            direction_auto=False, forced_direction=Direction.PULL
        ),
    )
    with pytest.raises(SanitizerError) as exc:
        engine.run(ImpureGatherMaskBFS(source=src))
    assert ViolationKind.IMPURE_HOOK in _kinds(exc.value)


class AliasMutatingSSSP(SSSP):
    """Stashes a writable CSR view in ``init`` (before the sanitizer
    freezes the graph) and mutates the topology through it mid-run."""

    def init(self, graph, **params):
        state = super().init(graph, **params)
        self._alias = graph.out_csr.targets[:]
        return state

    def on_frontier_expanded(self, frontier, metadata):
        super().on_frontier_expanded(frontier, metadata)
        self._alias[0] = (self._alias[0] + 1) % metadata.shape[0]


def test_csr_mutation_through_stale_alias_flagged():
    graph = gen.random_uniform_graph(120, 700, seed=29, name="san-alias")
    src = int(np.nonzero(graph.out_degrees() > 0)[0][0])
    engine = SIMDXEngine(graph, config=_sanitize_config())
    with pytest.raises(SanitizerError) as exc:
        engine.run(AliasMutatingSSSP(source=src))
    assert ViolationKind.CSR_MUTATION in _kinds(exc.value)


class OverlappingGroupsEngine(SIMDXEngine):
    """Plans sub-batches that assign one lane to two groups."""

    def _plan_groups(self, iteration, live, *args, **kwargs):
        groups = super()._plan_groups(iteration, live, *args, **kwargs)
        if len(live) >= 2:
            return [
                SubBatchPlan(Direction.PUSH, tuple(int(l) for l in live)),
                SubBatchPlan(Direction.PULL, (int(live[0]),)),
            ]
        return groups


def test_overlapping_lane_groups_flagged_as_lane_remap():
    graph = gen.random_uniform_graph(220, 1500, seed=41, name="san-remap")
    candidates = np.nonzero(graph.out_degrees() > 0)[0]
    sources = [int(v) for v in candidates[:4]]
    engine = OverlappingGroupsEngine(graph, config=_sanitize_config())
    with pytest.raises(SanitizerError) as exc:
        engine.run_batch(SSSP(), sources)
    assert ViolationKind.LANE_REMAP in _kinds(exc.value)


# ----------------------------------------------------------------------
# Direct-API defects: phase order, accounting, extra keys
# ----------------------------------------------------------------------
def test_stale_operand_flagged_as_phase_order():
    graph = gen.random_uniform_graph(60, 250, seed=3, name="san-phase")
    algo = SSSP(source=0)
    sanitizer = RuntimeSanitizer(graph)
    try:
        wrapped = sanitizer.wrap(algo, lane=0)
        state = algo.init(graph)
        sanitizer.freeze_graph()
        sanitizer.begin_superstep(0, state.metadata)
        src_ids = np.array([0], dtype=np.int64)
        dst_ids = np.array([1], dtype=np.int64)
        stale_src = state.metadata[src_ids] + 1.0  # not the snapshot value
        with pytest.raises(SanitizerError) as exc:
            wrapped.compute_edges(
                stale_src,
                np.ones(1),
                state.metadata[dst_ids],
                src_ids,
                dst_ids,
                graph,
            )
        assert _kinds(exc.value) == {ViolationKind.PHASE_ORDER}
    finally:
        sanitizer.release()


def _record(**overrides) -> IterationRecord:
    base = dict(
        iteration=1,
        direction="push",
        frontier_vertices=2,
        frontier_edges=4,
        filter_used="compact",
        filter_overflowed=False,
        compute_us=1.0,
        filter_us=0.0,
        barrier_us=0.0,
        launch_us=0.0,
        active_edges=4,
    )
    base.update(overrides)
    return IterationRecord(**base)


def test_accounting_violations_collected():
    graph = gen.random_uniform_graph(30, 100, seed=5, name="san-acct")
    sanitizer = RuntimeSanitizer(graph, raise_on_violation=False)
    sanitizer.observe_record(_record())  # clean
    sanitizer.observe_record(_record(iteration=2, active_edges=10))
    sanitizer.observe_record(_record(iteration=3, frontier_vertices=-1))
    sanitizer.observe_record(_record(iteration=1))  # iteration went backwards
    report = sanitizer.report()
    assert not report["clean"]
    assert {v["kind"] for v in report["violations"]} == {
        ViolationKind.ACCOUNTING.value
    }
    assert len(report["violations"]) == 3


def test_unregistered_extra_key_flagged():
    graph = gen.random_uniform_graph(30, 100, seed=5, name="san-extra")
    sanitizer = RuntimeSanitizer(graph)
    with pytest.raises(SanitizerError) as exc:
        sanitizer.validate_extra({"definitely_not_registered": 1})
    assert _kinds(exc.value) == {ViolationKind.EXTRA_KEY}


def test_negative_monotone_counter_flagged():
    graph = gen.random_uniform_graph(30, 100, seed=5, name="san-counter")
    sanitizer = RuntimeSanitizer(graph)
    with pytest.raises(SanitizerError) as exc:
        sanitizer.validate_extra({extra_keys.UNION_EDGES_WALKED: -3})
    assert _kinds(exc.value) == {ViolationKind.ACCOUNTING}


def test_violation_formatting_round_trips():
    violation = SanitizerViolation(
        kind=ViolationKind.ACCOUNTING,
        detail="example",
        iteration=4,
        lane=2,
        vertices=(1, 2),
    )
    as_dict = violation.as_dict()
    assert as_dict["kind"] == "accounting"
    assert "accounting" in str(violation)
    err = SanitizerError([violation])
    assert list(err.violations) == [violation]
    assert "accounting" in str(err)
