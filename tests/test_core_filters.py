"""Tests for the task-management filters and the JIT controller (Section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.filters import (
    AtomicFilter,
    BallotFilter,
    BatchFilter,
    FilterContext,
    FilterMode,
    OnlineFilter,
    StridedFilter,
    make_filter,
)
from repro.core.jit import JITTaskManager


def make_ctx(
    num_vertices: int = 100,
    updated=(5, 7, 7, 3),
    active=(3, 5, 7),
    frontier_edges: int = 50,
    num_threads: int = 4,
) -> FilterContext:
    updated = np.asarray(updated, dtype=np.int64)
    active_mask = np.zeros(num_vertices, dtype=bool)
    active_mask[list(active)] = True
    producers = np.arange(updated.size, dtype=np.int64) % num_threads
    return FilterContext(
        num_vertices=num_vertices,
        updated_destinations=updated,
        producer_thread=producers,
        active_mask=active_mask,
        frontier_edges=frontier_edges,
        num_worker_threads=num_threads,
    )


class TestOnlineFilter:
    def test_records_updated_destinations(self):
        result = OnlineFilter(capacity=8).build(make_ctx())
        assert np.array_equal(np.sort(result.worklist), [3, 5, 7, 7])
        assert not result.overflowed
        assert not result.is_sorted
        assert not result.is_unique

    def test_redundancy_preserved(self):
        result = OnlineFilter(capacity=8).build(make_ctx(updated=(7, 7, 7, 3)))
        assert result.redundancy == pytest.approx(2.0)

    def test_overflow_detection(self):
        ctx = make_ctx(updated=tuple(range(40)), num_threads=1)
        result = OnlineFilter(capacity=8).build(ctx)
        assert result.overflowed

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            OnlineFilter(capacity=0)

    def test_cheap_for_small_updates(self):
        small = OnlineFilter().build(make_ctx(num_vertices=100_000, updated=(1, 2)))
        # Cost does not scale with |V|: far below a metadata scan.
        assert small.work.coalesced_bytes < 1000


class TestBallotFilter:
    def test_sorted_unique_worklist_from_active_mask(self):
        result = BallotFilter().build(make_ctx())
        assert np.array_equal(result.worklist, [3, 5, 7])
        assert result.is_sorted and result.is_unique
        assert result.sortedness == 1.0
        assert result.redundancy == 1.0

    def test_cost_scales_with_vertex_count_not_frontier(self):
        small = BallotFilter().build(make_ctx(num_vertices=1_000))
        large = BallotFilter().build(make_ctx(num_vertices=100_000))
        assert large.work.coalesced_bytes > 50 * small.work.coalesced_bytes

    def test_never_overflows(self):
        ctx = make_ctx(updated=tuple(range(90)), num_threads=1)
        assert not BallotFilter().build(ctx).overflowed


class TestBatchFilter:
    def test_worklist_is_raw_updates(self):
        result = BatchFilter().build(make_ctx())
        assert np.array_equal(result.worklist, [5, 7, 7, 3])
        assert not result.is_sorted

    def test_requires_edge_list_memory(self):
        result = BatchFilter().build(make_ctx(frontier_edges=1000))
        assert result.extra_memory_bytes == 1000 * BatchFilter.EDGE_ENTRY_BYTES

    def test_memory_scales_with_frontier(self):
        small = BatchFilter().build(make_ctx(frontier_edges=10))
        large = BatchFilter().build(make_ctx(frontier_edges=10_000))
        assert large.extra_memory_bytes > 100 * small.extra_memory_bytes


class TestStridedAndAtomicFilters:
    def test_strided_output_matches_ballot(self):
        ctx = make_ctx()
        assert np.array_equal(
            StridedFilter().build(ctx).worklist, BallotFilter().build(ctx).worklist
        )

    def test_strided_scan_is_uncoalesced(self):
        ctx = make_ctx(num_vertices=10_000)
        strided = StridedFilter().build(ctx)
        ballot = BallotFilter().build(ctx)
        # Strided scan: one transaction per vertex read; ballot: coalesced.
        assert strided.work.scattered_transactions > ballot.work.scattered_transactions

    def test_atomic_filter_contends_on_tail_pointer(self):
        ctx = make_ctx(updated=tuple(range(64)))
        result = AtomicFilter().build(ctx)
        assert result.work.atomic_ops == 64
        assert result.work.atomic_contention == 64

    def test_atomic_filter_worklist_content(self):
        result = AtomicFilter().build(make_ctx())
        assert np.array_equal(np.sort(result.worklist), [3, 5, 7, 7])


class TestMakeFilter:
    @pytest.mark.parametrize(
        "mode,cls",
        [
            (FilterMode.ONLINE, OnlineFilter),
            (FilterMode.BALLOT, BallotFilter),
            (FilterMode.BATCH, BatchFilter),
            (FilterMode.STRIDED, StridedFilter),
            (FilterMode.ATOMIC, AtomicFilter),
        ],
    )
    def test_factory(self, mode, cls):
        assert isinstance(make_filter(mode), cls)

    def test_jit_is_not_a_standalone_filter(self):
        with pytest.raises(ValueError):
            make_filter(FilterMode.JIT)


class TestJITTaskManager:
    def test_starts_with_online_filter(self):
        jit = JITTaskManager(overflow_threshold=8)
        result = jit.build(make_ctx(), iteration=1)
        assert jit.current_filter_name == "online"
        assert jit.filter_trace() == ["online"]
        assert not result.is_sorted

    def test_switches_to_ballot_on_overflow(self):
        jit = JITTaskManager(overflow_threshold=4)
        overflow_ctx = make_ctx(updated=tuple(range(50)), num_threads=1,
                                active=tuple(range(50)))
        result = jit.build(overflow_ctx, iteration=1)
        assert jit.current_filter_name == "ballot"
        assert result.is_sorted and result.is_unique
        assert result.overflowed
        # The ballot output covers every active vertex despite the overflow.
        assert result.worklist.size == 50

    def test_switches_back_when_frontier_shrinks(self):
        jit = JITTaskManager(overflow_threshold=4)
        jit.build(make_ctx(updated=tuple(range(50)), num_threads=1), iteration=1)
        assert jit.current_filter_name == "ballot"
        jit.build(make_ctx(updated=(1, 2)), iteration=2)
        # The shadow online filter did not overflow, so iteration 3 is online.
        assert jit.current_filter_name == "online"
        assert jit.filter_trace() == ["ballot", "ballot"]

    def test_no_switch_back_without_shadow(self):
        jit = JITTaskManager(overflow_threshold=4, shadow_online=False)
        jit.build(make_ctx(updated=tuple(range(50)), num_threads=1), iteration=1)
        jit.build(make_ctx(updated=(1, 2)), iteration=2)
        assert jit.current_filter_name == "ballot"

    def test_shadow_online_adds_bounded_overhead(self):
        overflow_ctx = make_ctx(updated=tuple(range(50)), num_threads=1)
        with_shadow = JITTaskManager(overflow_threshold=4, shadow_online=True)
        without = JITTaskManager(overflow_threshold=4, shadow_online=False)
        with_shadow.build(overflow_ctx, 1)
        without.build(overflow_ctx, 1)
        r1 = with_shadow.build(overflow_ctx, 2)
        r2 = without.build(overflow_ctx, 2)
        assert r1.work.coalesced_bytes >= r2.work.coalesced_bytes

    def test_decisions_and_pattern(self):
        jit = JITTaskManager(overflow_threshold=4)
        jit.build(make_ctx(updated=(1,)), 1)
        jit.build(make_ctx(updated=tuple(range(50)), num_threads=1), 2)
        jit.build(make_ctx(updated=(1,)), 3)
        assert len(jit.decisions) == 3
        # Iteration 3 still runs the ballot filter (the switch back to the
        # online filter takes effect the following iteration).
        assert jit.ballot_iterations() == [2, 3]
        assert jit.online_iterations() == [1]
        assert jit.activation_pattern() == "online*1, ballot*2"

    def test_reset(self):
        jit = JITTaskManager(overflow_threshold=4)
        jit.build(make_ctx(updated=tuple(range(50)), num_threads=1), 1)
        jit.reset()
        assert jit.current_filter_name == "online"
        assert jit.decisions == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            JITTaskManager(overflow_threshold=0)
