"""Wall-clock harness regressions: warm-cache calibration and --bench-id.

Two bugfixes pinned here:

* **Calibration never times a cold graph build.** The inner-loop
  calibration estimate times the first ``_run_cell`` call of each cell;
  before the fix, the first cell of each dataset paid the cold
  ``context.graph(abbrev)`` build inside that clock, inflating the
  estimate and under-calibrating ``inner_runs`` (samples shorter than
  ``_SAMPLE_TARGET_S`` means more noise under the 15% CI gate). The
  per-dataset priming in :func:`run_wallclock_benchmark` guarantees
  every ``_run_cell`` call - estimate clock included - sees a warm
  graph cache.
* **The emitted record id comes from ``--bench-id``.** Previously
  hardcoded to ``"BENCH_0008"``, which would have stamped every future
  PR's committed record with PR 8's id and confused the
  ``tools/bench_compare.py`` trajectory.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import harness


def test_run_cell_never_sees_cold_graph_cache(monkeypatch):
    """Every _run_cell call (estimate included) runs on a primed cache."""
    real_run_cell = harness._run_cell
    cold_calls = []

    def spying_run_cell(context, abbrev, algorithm_name, backend):
        if abbrev.upper() not in context._graphs:
            cold_calls.append((abbrev, algorithm_name, backend))
        return real_run_cell(context, abbrev, algorithm_name, backend)

    monkeypatch.setattr(harness, "_run_cell", spying_run_cell)
    record = harness.run_wallclock_benchmark(
        scale=0.05, datasets=("RC",), algorithms=("bfs",), repeats=2
    )
    assert cold_calls == []
    assert len(record["benchmarks"]) == 1


def test_calibration_estimate_excludes_graph_build(monkeypatch):
    """The calibration estimate times runs, not the dataset build.

    The graph loader is instrumented to burn recognizable fake time; if
    the build leaked into the estimate clock, ``inner_runs`` would
    collapse to 1 for a cell whose actual runtime calls for many inner
    runs.
    """
    real_graph = harness.BenchmarkContext.graph
    build_count = [0]

    def counting_graph(self, abbrev):
        if abbrev.upper() not in self._graphs:
            build_count[0] += 1
        return real_graph(self, abbrev)

    monkeypatch.setattr(harness.BenchmarkContext, "graph", counting_graph)
    record = harness.run_wallclock_benchmark(
        scale=0.05, datasets=("RC",), algorithms=("bfs",), repeats=2
    )
    # One cold build per dataset - and a tiny bfs cell must calibrate to
    # a multi-run inner loop (a cold build inside the estimate clock
    # would push the estimate over _SAMPLE_TARGET_S and collapse it).
    assert build_count[0] == 1
    entry = record["benchmarks"][0]
    assert entry["backends"]["numpy"]["inner_runs"] > 1


def test_bench_id_defaults_and_round_trips():
    record = harness.run_wallclock_benchmark(
        scale=0.05, datasets=("RC",), algorithms=("bfs",), repeats=2
    )
    assert record["bench_id"] == "BENCH_0000"
    record = harness.run_wallclock_benchmark(
        scale=0.05, datasets=("RC",), algorithms=("bfs",), repeats=2,
        bench_id="BENCH_0009",
    )
    assert record["bench_id"] == "BENCH_0009"


def test_cli_threads_bench_id_into_emitted_json(tmp_path, monkeypatch):
    """--bench-id reaches both run_wallclock_benchmark and the JSON file."""
    captured = {}

    def stub_benchmark(**kwargs):
        captured.update(kwargs)
        return {
            "bench_id": kwargs["bench_id"],
            "schema_version": harness.BENCH_SCHEMA_VERSION,
            "config": {},
            "host": {},
            "benchmarks": [],
        }

    monkeypatch.setattr(harness, "run_wallclock_benchmark", stub_benchmark)
    out = tmp_path / "BENCH_TEST.json"
    exit_code = harness.main([
        "--emit-bench-json", str(out),
        "--bench-id", "BENCH_0009",
        "--scale", "0.05",
        "--datasets", "RC",
        "--algorithms", "bfs",
        "--repeats", "2",
    ])
    assert exit_code == 0
    assert captured["bench_id"] == "BENCH_0009"
    assert json.loads(out.read_text())["bench_id"] == "BENCH_0009"


def test_cli_default_bench_id_is_placeholder(monkeypatch):
    """Without --bench-id the record is stamped BENCH_0000, not a PR id."""
    captured = {}

    def stub_benchmark(**kwargs):
        captured.update(kwargs)
        return {"bench_id": kwargs["bench_id"], "benchmarks": []}

    monkeypatch.setattr(harness, "run_wallclock_benchmark", stub_benchmark)
    assert harness.main(["--datasets", "RC", "--algorithms", "bfs"]) == 0
    assert captured["bench_id"] == "BENCH_0000"
