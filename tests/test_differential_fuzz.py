"""Differential fuzz harness for the whole engine.

Seeded random graphs × all 7 algorithms × every execution mode the engine
offers must agree:

* the **auto**-direction run is checked against the single-threaded serial
  reference oracle (``repro.baselines.reference``) - exactly for the
  discrete / monotone-min algorithms (BFS, SSSP, WCC, k-Core membership),
  to numeric tolerance for the float-accumulating ones (PageRank, BP,
  SpMV), whose reference implementations sum updates in a different order;
* **forced push**, **forced pull** and **forced per-iteration direction
  schedules** must be bit-identical to the auto run - the engine's core
  push/pull equivalence, fuzzed across graph shapes;
* for the multi-source algorithms (BFS, SSSP), **batched** runs at
  K ∈ {1, 4, 16} with lane-aware splitting forced eagerly on
  (``split_margin=0``), forced off (``lane_aware_split=False``) and under
  random forced split schedules must be bit-identical per lane to the K
  serial single-source engine runs (which the auto check ties back to the
  oracle);
* the **kernel-backend axis** (``EngineConfig.kernel_backend``): the
  loop-reference ``python`` backend must be bit-identical to the
  vectorized ``numpy`` backend in every mode above. The small matrix
  crosses it with auto/push/pull and the batched split modes; the slow
  matrix also crosses it with random schedules, K=16 and the sharded
  num_shards ∈ {1, 2, 4} axis.

A small matrix runs in tier-1 on every push; the large matrix (more
seeds, more graph shapes, K=16, random schedules) carries the ``slow``
marker and runs in the nightly bench-smoke job (REPRO_RUN_SLOW=1).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    SSSP,
    BeliefPropagation,
    KCore,
    PageRank,
    SpMV,
    WCC,
)
from repro.baselines import reference as ref
from repro.core.direction import Direction
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from tests.conftest import assert_distances_equal

#: ``REPRO_SANITIZE=1`` runs the whole matrix with the runtime sanitizer
#: armed (``EngineConfig.sanitize``): any combine bypass, phase-order
#: violation, lane remap, CSR mutation or accounting inconsistency raises
#: instead of silently passing the differential checks. CI sets it on the
#: static-analysis job and on the nightly slow matrix.
SANITIZE = os.environ.get("REPRO_SANITIZE", "") == "1"


def _config(**kwargs) -> EngineConfig:
    kwargs.setdefault("sanitize", SANITIZE)
    return EngineConfig(**kwargs)


#: The kernel-backend axis: every differential cell that crosses it must
#: produce bit-identical values under the loop reference and the
#: vectorized backend (docs/kernels.md).
KERNEL_BACKENDS = ("python", "numpy")


# ----------------------------------------------------------------------
# Seeded graph shapes
# ----------------------------------------------------------------------
def _uniform(seed: int) -> CSRGraph:
    return gen.random_uniform_graph(
        220, 1500, seed=seed, name=f"fuzz-uniform-{seed}"
    )


def _rmat(seed: int) -> CSRGraph:
    return gen.rmat_graph(8, 8, seed=seed, name=f"fuzz-rmat-{seed}")


def _road(seed: int) -> CSRGraph:
    return gen.road_network_graph(14, 14, seed=seed, name=f"fuzz-road-{seed}")


GRAPH_SHAPES: Dict[str, Callable[[int], CSRGraph]] = {
    "uniform": _uniform,
    "rmat": _rmat,
    "road": _road,
}

#: (shape, seed) cells of the tier-1 matrix - one skewed, one uniform.
SMALL_MATRIX = [("uniform", 101), ("rmat", 202)]
#: The nightly matrix adds the road shape and more seeds per shape.
SLOW_MATRIX = [
    (shape, seed)
    for shape in ("uniform", "rmat", "road")
    for seed in (11, 23, 47)
]


def _source(graph: CSRGraph, rng: np.random.Generator) -> int:
    """Deterministic random source with at least one out-edge."""
    degrees = graph.out_degrees()
    candidates = np.nonzero(degrees > 0)[0]
    if candidates.size == 0:
        return 0
    return int(candidates[rng.integers(0, candidates.size)])


def _sources(graph: CSRGraph, rng: np.random.Generator, k: int) -> List[int]:
    degrees = graph.out_degrees()
    candidates = np.nonzero(degrees > 0)[0]
    k = min(k, candidates.size)
    picked = rng.choice(candidates, size=k, replace=False)
    return [int(v) for v in picked]


# ----------------------------------------------------------------------
# Algorithm cases: (factory, oracle check) per algorithm
# ----------------------------------------------------------------------
def _bfs_case(graph, rng):
    src = _source(graph, rng)

    def oracle(values, algo):
        assert np.array_equal(values, ref.bfs_levels(graph, src))

    return (lambda: BFS(source=src)), oracle


def _sssp_case(graph, rng):
    src = _source(graph, rng)

    def oracle(values, algo):
        assert_distances_equal(values, ref.sssp_distances(graph, src))

    return (lambda: SSSP(source=src)), oracle


def _sssp_delta_case(graph, rng):
    src = _source(graph, rng)
    delta = float(rng.uniform(2.0, 20.0))

    def oracle(values, algo):
        assert_distances_equal(values, ref.sssp_distances(graph, src))

    return (lambda: SSSP(source=src, delta=delta)), oracle


def _pagerank_case(graph, rng):
    def oracle(values, algo):
        expected = ref.pagerank_scores(graph)
        assert np.abs(values - expected).max() < 1e-4

    return (lambda: PageRank(tolerance=1e-7)), oracle


def _kcore_case(graph, rng):
    k = int(rng.integers(2, 8))

    def oracle(values, algo):
        assert np.array_equal(
            algo.core_membership(values), ref.kcore_membership(graph, k)
        )

    return (lambda: KCore(k=k)), oracle


def _wcc_case(graph, rng):
    def oracle(values, algo):
        assert np.array_equal(values, ref.wcc_labels(graph))

    return (lambda: WCC()), oracle


def _spmv_case(graph, rng):
    x = rng.random(graph.num_vertices)

    def oracle(values, algo):
        assert np.allclose(values, ref.spmv_product(graph, x))

    return (lambda: SpMV(x=x.copy())), oracle


def _bp_case(graph, rng):
    def oracle(values, algo):
        expected = ref.bp_beliefs(
            graph, algo._prior, damping=0.5, num_iterations=6
        )
        assert np.allclose(values, expected)

    return (lambda: BeliefPropagation(num_iterations=6, damping=0.5)), oracle


#: All 7 algorithms (SSSP also in its delta-stepping configuration).
ALGORITHM_CASES = {
    "bfs": _bfs_case,
    "sssp": _sssp_case,
    "sssp-delta": _sssp_delta_case,
    "pagerank": _pagerank_case,
    "kcore": _kcore_case,
    "wcc": _wcc_case,
    "spmv": _spmv_case,
    "bp": _bp_case,
}

#: Multi-source algorithms exercised through the batched modes.
BATCHED_CASES = ("bfs", "sssp")


def _random_direction_schedule(rng, length=64):
    return [
        Direction.PUSH if rng.random() < 0.5 else Direction.PULL
        for _ in range(length)
    ]


def _random_split_schedule(seed: int):
    rng = np.random.default_rng(seed)

    def schedule(iteration, live):
        if len(live) < 2 or rng.random() < 0.25:
            return None
        cut = int(rng.integers(1, len(live)))
        order = list(rng.permutation(live))
        return [
            (Direction.PUSH, sorted(int(v) for v in order[:cut])),
            (Direction.PULL, sorted(int(v) for v in order[cut:])),
        ]

    return schedule


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
def _check_single_source_modes(
    graph, case_name, seed, *, with_schedules, backends=("numpy",)
):
    """Oracle + push/pull (+ scheduled) agreement for one (graph, algo).

    The numpy-backend auto run is the anchor (checked against the serial
    oracle); every (mode, backend) cell must be bit-identical to it.
    """
    rng = np.random.default_rng(seed * 7919 + sum(ord(c) for c in case_name))
    make_algo, oracle = ALGORITHM_CASES[case_name](graph, rng)

    auto_algo = make_algo()
    auto = SIMDXEngine(graph, config=_config()).run(auto_algo)
    assert not auto.failed, auto.failure_reason
    oracle(auto.values, auto_algo)

    schedule = _random_direction_schedule(rng) if with_schedules else None
    for backend in backends:
        modes = {}
        if backend != "numpy":
            modes["auto"] = _config(kernel_backend=backend)
        modes["push"] = _config(
            direction_auto=False, forced_direction=Direction.PUSH,
            kernel_backend=backend,
        )
        modes["pull"] = _config(
            direction_auto=False, forced_direction=Direction.PULL,
            kernel_backend=backend,
        )
        if schedule is not None:
            modes["schedule"] = _config(
                direction_auto=False, forced_direction_schedule=schedule,
                kernel_backend=backend,
            )
        for mode, config in modes.items():
            result = SIMDXEngine(graph, config=config).run(make_algo())
            assert not result.failed, result.failure_reason
            assert np.array_equal(result.values, auto.values), (
                f"{case_name} diverged in mode {mode} "
                f"(kernel_backend={backend}) on {graph.name}"
            )
            assert result.extra["kernel_backend"] == backend
    return make_algo


def _check_batched_modes(graph, case_name, seed, lane_counts,
                         backends=("numpy",)):
    """Batched K lanes × split-mode × backend sweep vs serial runs."""
    rng = np.random.default_rng(seed * 6271 + sum(ord(c) for c in case_name))
    make_algo, _ = ALGORITHM_CASES[case_name](graph, rng)
    single_values: Dict[int, np.ndarray] = {}

    def serial(source: int) -> np.ndarray:
        if source not in single_values:
            algo = make_algo()
            algo.source = source
            single_values[source] = SIMDXEngine(graph, config=_config()).run(algo).values
        return single_values[source]

    batch_configs = {}
    for backend in backends:
        batch_configs[f"split-on@{backend}"] = _config(
            split_margin=0.0, kernel_backend=backend
        )
        batch_configs[f"split-off@{backend}"] = _config(
            lane_aware_split=False, kernel_backend=backend
        )
        batch_configs[f"split-forced@{backend}"] = _config(
            split_schedule=_random_split_schedule(seed),
            kernel_backend=backend,
        )
    for k in lane_counts:
        sources = _sources(graph, rng, k)
        for mode, config in batch_configs.items():
            batch = SIMDXEngine(graph, config=config).run_batch(
                make_algo(), sources
            )
            assert not batch.failed, batch.failure_reason
            assert batch.extra["kernel_backend"] == config.kernel_backend
            for lane, source in enumerate(sources):
                assert np.array_equal(batch.values[lane], serial(source)), (
                    f"{case_name} lane {lane} (source {source}) diverged "
                    f"in mode {mode} at K={len(sources)} on {graph.name}"
                )


@pytest.mark.parametrize("shape,seed", SMALL_MATRIX)
@pytest.mark.parametrize("case_name", sorted(ALGORITHM_CASES))
def test_small_matrix_single_source(shape, seed, case_name):
    graph = GRAPH_SHAPES[shape](seed)
    _check_single_source_modes(
        graph, case_name, seed, with_schedules=False,
        backends=KERNEL_BACKENDS,
    )


@pytest.mark.parametrize("shape,seed", SMALL_MATRIX)
@pytest.mark.parametrize("case_name", BATCHED_CASES)
def test_small_matrix_batched(shape, seed, case_name):
    graph = GRAPH_SHAPES[shape](seed)
    _check_batched_modes(
        graph, case_name, seed, lane_counts=(1, 4), backends=KERNEL_BACKENDS
    )


@pytest.mark.slow
@pytest.mark.parametrize("shape,seed", SLOW_MATRIX)
@pytest.mark.parametrize("case_name", sorted(ALGORITHM_CASES))
def test_slow_matrix_single_source(shape, seed, case_name):
    graph = GRAPH_SHAPES[shape](seed)
    _check_single_source_modes(
        graph, case_name, seed, with_schedules=True, backends=KERNEL_BACKENDS
    )


@pytest.mark.slow
@pytest.mark.parametrize("shape,seed", SLOW_MATRIX)
@pytest.mark.parametrize("case_name", BATCHED_CASES)
def test_slow_matrix_batched(shape, seed, case_name):
    graph = GRAPH_SHAPES[shape](seed)
    _check_batched_modes(
        graph, case_name, seed, lane_counts=(1, 4, 16),
        backends=KERNEL_BACKENDS,
    )


# ----------------------------------------------------------------------
# Sharded multi-device axis (EngineConfig.num_shards)
# ----------------------------------------------------------------------
#: Shard counts of the sharded axis; 1 is the single-device baseline the
#: sharded runs must match bit-for-bit.
SHARD_COUNTS = (2, 4)


def _assert_shard_extra(result, num_shards):
    """Registered shard accounting must be internally consistent."""
    assert result.extra["shards"] == num_shards
    scanned = result.extra["shard_scanned_edges"]
    assert len(scanned) == num_shards
    assert sum(scanned) == sum(
        r.frontier_edges for r in result.iteration_records
    )
    # The backend walk counter covers every shard's expansions.
    assert result.extra["kernel_edges_walked"] == sum(scanned)
    assert result.extra["shard_boundary_updates"] >= 0
    assert len(result.extra["shard_peak_bytes"]) == num_shards


def _check_sharded_single_source(
    graph, case_name, seed, *, with_schedules, backends=("numpy",)
):
    """Sharded runs must be bit-identical to the single-device run."""
    rng = np.random.default_rng(seed * 7919 + sum(ord(c) for c in case_name))
    make_algo, oracle = ALGORITHM_CASES[case_name](graph, rng)

    auto_algo = make_algo()
    auto = SIMDXEngine(graph, config=_config()).run(auto_algo)
    assert not auto.failed, auto.failure_reason
    oracle(auto.values, auto_algo)

    configs = {
        "auto": lambda ns, kb: _config(num_shards=ns, kernel_backend=kb),
        "push": lambda ns, kb: _config(
            num_shards=ns, direction_auto=False,
            forced_direction=Direction.PUSH, kernel_backend=kb,
        ),
        "pull": lambda ns, kb: _config(
            num_shards=ns, direction_auto=False,
            forced_direction=Direction.PULL, kernel_backend=kb,
        ),
    }
    if with_schedules:
        schedule = _random_direction_schedule(rng)
        configs["schedule"] = lambda ns, kb: _config(
            num_shards=ns, direction_auto=False,
            forced_direction_schedule=schedule, kernel_backend=kb,
        )
    for num_shards in SHARD_COUNTS:
        for backend in backends:
            for mode, make_config in configs.items():
                sharded = SIMDXEngine(
                    graph, config=make_config(num_shards, backend)
                ).run(make_algo())
                assert not sharded.failed, sharded.failure_reason
                assert np.array_equal(sharded.values, auto.values), (
                    f"{case_name} diverged on {num_shards} shards ({mode}, "
                    f"kernel_backend={backend}) on {graph.name}"
                )
                _assert_shard_extra(sharded, num_shards)


def _check_sharded_batched(graph, case_name, seed, lane_counts,
                           backends=("numpy",)):
    """Sharded batches must match the K serial single-source runs."""
    rng = np.random.default_rng(seed * 6271 + sum(ord(c) for c in case_name))
    make_algo, _ = ALGORITHM_CASES[case_name](graph, rng)
    single_values: Dict[int, np.ndarray] = {}

    def serial(source: int) -> np.ndarray:
        if source not in single_values:
            algo = make_algo()
            algo.source = source
            single_values[source] = (
                SIMDXEngine(graph, config=_config()).run(algo).values
            )
        return single_values[source]

    for k in lane_counts:
        sources = _sources(graph, rng, k)
        for num_shards in SHARD_COUNTS:
            for backend in backends:
                # Per-shard direction selection replaces lane-group
                # splitting, so the split knobs are inert on the sharded
                # path; the default config exercises exactly what ships.
                batch = SIMDXEngine(
                    graph,
                    config=_config(
                        num_shards=num_shards, kernel_backend=backend
                    ),
                ).run_batch(make_algo(), sources)
                assert not batch.failed, batch.failure_reason
                _assert_shard_extra(batch, num_shards)
                for lane, source in enumerate(sources):
                    assert np.array_equal(
                        batch.values[lane], serial(source)
                    ), (
                        f"{case_name} lane {lane} (source {source}) "
                        f"diverged on {num_shards} shards at "
                        f"K={len(sources)} (kernel_backend={backend}) "
                        f"on {graph.name}"
                    )


@pytest.mark.parametrize("shape,seed", SMALL_MATRIX)
@pytest.mark.parametrize("case_name", sorted(ALGORITHM_CASES))
def test_small_matrix_sharded_single_source(shape, seed, case_name):
    graph = GRAPH_SHAPES[shape](seed)
    _check_sharded_single_source(graph, case_name, seed, with_schedules=False)


@pytest.mark.parametrize("shape,seed", SMALL_MATRIX)
@pytest.mark.parametrize("case_name", BATCHED_CASES)
def test_small_matrix_sharded_batched(shape, seed, case_name):
    graph = GRAPH_SHAPES[shape](seed)
    _check_sharded_batched(graph, case_name, seed, lane_counts=(1, 4))


@pytest.mark.slow
@pytest.mark.parametrize("shape,seed", SLOW_MATRIX)
@pytest.mark.parametrize("case_name", sorted(ALGORITHM_CASES))
def test_slow_matrix_sharded_single_source(shape, seed, case_name):
    graph = GRAPH_SHAPES[shape](seed)
    _check_sharded_single_source(
        graph, case_name, seed, with_schedules=True, backends=KERNEL_BACKENDS
    )


@pytest.mark.slow
@pytest.mark.parametrize("shape,seed", SLOW_MATRIX)
@pytest.mark.parametrize("case_name", BATCHED_CASES)
def test_slow_matrix_sharded_batched(shape, seed, case_name):
    graph = GRAPH_SHAPES[shape](seed)
    _check_sharded_batched(
        graph, case_name, seed, lane_counts=(1, 4, 16),
        backends=KERNEL_BACKENDS,
    )


# ----------------------------------------------------------------------
# Dynamic-graph axis (src/repro/dyn/ + src/repro/cache/)
# ----------------------------------------------------------------------
#: Algorithms queried through the dynamic axis: the repairable monotone
#: trio (exercising incremental repair) plus SSSP's delta-stepping
#: configuration (same repair plan, different scheduler).
DYN_CASES = ("bfs", "sssp", "sssp-delta", "wcc")


def _dyn_make(case_name, source):
    if case_name == "bfs":
        return BFS(source=source)
    if case_name == "sssp":
        return SSSP(source=source)
    if case_name == "sssp-delta":
        return SSSP(source=source, delta=8.0)
    if case_name == "wcc":
        return WCC()
    raise KeyError(case_name)


def _dyn_random_batch(dyn, rng):
    """A seeded random insert+delete batch against the current edge set."""
    n = dyn.num_vertices
    ins = rng.integers(0, n, size=(int(rng.integers(2, 8)), 2))
    ins = ins[ins[:, 0] != ins[:, 1]]
    weights = rng.uniform(0.5, 3.0, size=len(ins))
    edges = dyn.snapshot().to_edge_array()
    picks = rng.choice(
        len(edges), size=min(int(rng.integers(1, 6)), len(edges)),
        replace=False,
    )
    return {"inserts": ins, "insert_weights": weights,
            "deletes": edges[picks]}


def _hub_source(graph, rng):
    """A seeded pick among the top-degree vertices: a source that random
    deletes could isolate makes delta-stepping spin through empty
    buckets (slow, not wrong) - hubs keep the axis fast."""
    order = np.argsort(-graph.out_degrees(), kind="stable")
    return int(order[rng.integers(0, max(1, graph.num_vertices // 8))])


def _check_dyn_axis(graph, seed, *, rounds, num_shards=1):
    """Random update batches interleaved with queries: warm incremental
    repair must be bit-identical to a from-scratch run on every snapshot
    (sanitize-clean under REPRO_SANITIZE=1)."""
    from repro.dyn import DynamicGraph, EdgeUpdateBatch, IncrementalRecompute

    config = _config(num_shards=num_shards) if num_shards > 1 else _config()
    dyn = DynamicGraph(graph)
    rng = np.random.default_rng(seed * 4099 + 17)
    recompute = IncrementalRecompute(config=config)
    source = _hub_source(graph, rng)
    warm = {
        case: SIMDXEngine(dyn.snapshot(), config=config)
        .run(_dyn_make(case, source))
        .values
        for case in DYN_CASES
    }
    for _ in range(rounds):
        receipt = dyn.apply(EdgeUpdateBatch.of(**_dyn_random_batch(dyn, rng)))
        scratch_engine = SIMDXEngine(receipt.new_graph, config=config)
        for case in DYN_CASES:
            repaired = recompute.run(
                receipt, _dyn_make(case, source), warm[case]
            )
            assert not repaired.failed, repaired.failure_reason
            scratch = scratch_engine.run(_dyn_make(case, source))
            assert not scratch.failed, scratch.failure_reason
            assert np.array_equal(repaired.values, scratch.values), (
                f"{case} incremental repair diverged from scratch at "
                f"version {receipt.version} on {graph.name} "
                f"(num_shards={num_shards})"
            )
            warm[case] = repaired.values


def _check_dyn_cached_axis(graph, seed, *, rounds):
    """The CachedQueryEngine path: every answer (hit / repair / miss)
    must match a fresh from-scratch engine run on the current snapshot."""
    from repro.cache import CachedQueryEngine

    config = _config()
    qe = CachedQueryEngine(graph, config=config)
    rng = np.random.default_rng(seed * 5003 + 29)
    # A small skewed source pool of hubs: repeats drive hits and repairs.
    pool = [_hub_source(graph, rng) for _ in range(3)]
    seen_outcomes = set()
    for _ in range(rounds):
        for _ in range(4):
            case = DYN_CASES[int(rng.integers(0, len(DYN_CASES)))]
            source = pool[int(rng.integers(0, len(pool)))]
            name = "sssp" if case == "sssp-delta" else case
            params = {"delta": 8.0} if case == "sssp-delta" else {}
            answer = qe.query(name, None if name == "wcc" else source,
                              **params)
            seen_outcomes.add(answer.outcome)
            algo = _dyn_make(case, source)
            scratch = SIMDXEngine(qe.dyn.snapshot(), config=config).run(algo)
            assert np.array_equal(answer.values, scratch.values), (
                f"{case} cached answer ({answer.outcome}) diverged from "
                f"scratch at version {qe.dyn.version} on {graph.name}"
            )
        qe.update(**_dyn_random_batch(qe.dyn, rng))
    assert "hit" in seen_outcomes and "miss" in seen_outcomes


@pytest.mark.parametrize("shape,seed", SMALL_MATRIX)
def test_small_matrix_dyn(shape, seed):
    graph = GRAPH_SHAPES[shape](seed)
    _check_dyn_axis(graph, seed, rounds=3)


@pytest.mark.parametrize("shape,seed", SMALL_MATRIX)
def test_small_matrix_dyn_cached(shape, seed):
    graph = GRAPH_SHAPES[shape](seed)
    _check_dyn_cached_axis(graph, seed, rounds=2)


@pytest.mark.parametrize("shape,seed", SMALL_MATRIX)
def test_small_matrix_dyn_sharded(shape, seed):
    graph = GRAPH_SHAPES[shape](seed)
    _check_dyn_axis(graph, seed, rounds=2, num_shards=2)


@pytest.mark.slow
@pytest.mark.parametrize("shape,seed", SLOW_MATRIX)
def test_slow_matrix_dyn(shape, seed):
    graph = GRAPH_SHAPES[shape](seed)
    _check_dyn_axis(graph, seed, rounds=6)


@pytest.mark.slow
@pytest.mark.parametrize("shape,seed", SLOW_MATRIX)
def test_slow_matrix_dyn_cached(shape, seed):
    graph = GRAPH_SHAPES[shape](seed)
    _check_dyn_cached_axis(graph, seed, rounds=4)


@pytest.mark.slow
@pytest.mark.parametrize("shape,seed", SLOW_MATRIX)
@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_slow_matrix_dyn_sharded(shape, seed, num_shards):
    graph = GRAPH_SHAPES[shape](seed)
    _check_dyn_axis(graph, seed, rounds=4, num_shards=num_shards)
