"""Tests for the deadlock-free software global barrier (Section 5)."""

from __future__ import annotations

import pytest

from repro.gpu.barrier import BarrierDeadlockError, SoftwareGlobalBarrier
from repro.gpu.device import K20, K40
from repro.gpu.kernel import Kernel
from repro.gpu.registers import compute_cta_count


class TestDeadlockFreedom:
    def test_default_launch_is_deadlock_free(self):
        barrier = SoftwareGlobalBarrier(K40, Kernel("fused_push", 48))
        assert barrier.is_deadlock_free
        assert barrier.num_ctas == barrier.max_resident_ctas

    def test_default_cta_count_matches_equation_one(self):
        kernel = Kernel("fused_all", 110)
        barrier = SoftwareGlobalBarrier(K40, kernel)
        assert barrier.num_ctas == compute_cta_count(
            K40, registers_per_thread=110, threads_per_cta=kernel.threads_per_cta
        )

    def test_oversubscription_rejected_at_construction(self):
        kernel = Kernel("fused_all", 110)
        safe = compute_cta_count(K40, registers_per_thread=110,
                                 threads_per_cta=kernel.threads_per_cta)
        with pytest.raises(BarrierDeadlockError):
            SoftwareGlobalBarrier(K40, kernel, num_ctas=safe + 1)

    def test_oversubscription_detected_at_sync_when_unchecked(self):
        # Prior-work barriers only discover the hang at runtime.
        kernel = Kernel("fused_all", 110)
        safe = compute_cta_count(K40, registers_per_thread=110,
                                 threads_per_cta=kernel.threads_per_cta)
        barrier = SoftwareGlobalBarrier(
            K40, kernel, num_ctas=safe * 2, check_deadlock=False
        )
        assert not barrier.is_deadlock_free
        with pytest.raises(BarrierDeadlockError):
            barrier.synchronize()

    def test_undersubscribed_launch_allowed(self):
        barrier = SoftwareGlobalBarrier(K40, Kernel("fused_push", 48), num_ctas=4)
        assert barrier.is_deadlock_free
        barrier.synchronize()

    def test_zero_ctas_rejected(self):
        with pytest.raises(ValueError):
            SoftwareGlobalBarrier(K40, Kernel("k", 48), num_ctas=0)

    def test_k20_hosts_fewer_ctas_than_k40(self):
        kernel = Kernel("fused_push", 48)
        b20 = SoftwareGlobalBarrier(K20, kernel)
        b40 = SoftwareGlobalBarrier(K40, kernel)
        assert b20.max_resident_ctas < b40.max_resident_ctas


class TestSynchronization:
    def test_sync_cost_positive_and_scales_with_ctas(self):
        small = SoftwareGlobalBarrier(K40, Kernel("k", 48), num_ctas=8)
        large = SoftwareGlobalBarrier(K40, Kernel("k", 48))
        assert 0 < small.synchronize() < large.synchronize()

    def test_sync_cost_well_below_kernel_launch(self):
        # The whole point of fusing across the barrier: a sync is much
        # cheaper than relaunching a kernel.
        barrier = SoftwareGlobalBarrier(K40, Kernel("fused_push", 48))
        assert barrier.synchronize() < K40.kernel_launch_overhead_us

    def test_stats_accumulate(self):
        barrier = SoftwareGlobalBarrier(K40, Kernel("k", 48), num_ctas=16)
        for _ in range(5):
            barrier.synchronize()
        assert barrier.stats.synchronizations == 5
        assert barrier.stats.total_cta_arrivals == 5 * 16

    def test_lock_array_returns_to_zero(self):
        barrier = SoftwareGlobalBarrier(K40, Kernel("k", 48), num_ctas=8)
        barrier.synchronize()
        assert all(slot == 0 for slot in barrier._lock)
