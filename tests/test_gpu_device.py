"""Tests for the GPU device model: specs, memory, occupancy, cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.device import (
    DeviceOutOfMemory,
    GPUDevice,
    K20,
    K40,
    P100,
    KNOWN_DEVICES,
    get_device_spec,
)
from repro.gpu.kernel import Kernel, KernelLaunch, WorkEstimate
from repro.gpu.registers import (
    compute_cta_count,
    compute_occupancy,
    configurable_thread_count,
)


class TestSpecs:
    def test_known_devices(self):
        assert set(KNOWN_DEVICES) == {"K20", "K40", "P100"}
        assert get_device_spec("k40") is K40
        with pytest.raises(KeyError):
            get_device_spec("V100")

    def test_paper_register_file_sizes(self):
        # Section 5 quotes these numbers explicitly.
        assert K40.registers_per_smx == 65_536
        assert K20.registers_per_smx == 32_768

    def test_device_ordering_by_capability(self):
        assert P100.memory_bandwidth_gbps > K40.memory_bandwidth_gbps > K20.memory_bandwidth_gbps
        assert P100.peak_gips > K40.peak_gips > K20.peak_gips
        assert P100.global_memory_bytes > K40.global_memory_bytes

    def test_derived_quantities(self):
        assert K40.total_cuda_cores == 15 * 192
        assert K40.max_resident_threads == 15 * 2048


class TestMemoryAllocator:
    def test_alloc_and_free(self):
        dev = GPUDevice(K40)
        a = dev.malloc(1000, "a")
        assert dev.allocated_bytes == 1000
        dev.free(a)
        assert dev.allocated_bytes == 0

    def test_free_is_idempotent(self):
        dev = GPUDevice(K40)
        a = dev.malloc(1000)
        dev.free(a)
        dev.free(a)
        assert dev.allocated_bytes == 0

    def test_oom_raised(self):
        dev = GPUDevice(K40, memory_scale=1e-9)
        with pytest.raises(DeviceOutOfMemory):
            dev.malloc(10**9, "huge")

    def test_oom_message_mentions_label(self):
        dev = GPUDevice(K40, memory_scale=1e-9)
        with pytest.raises(DeviceOutOfMemory, match="edge_list"):
            dev.malloc(10**9, "edge_list")

    def test_reset_memory(self):
        dev = GPUDevice(K40)
        dev.malloc(100)
        dev.malloc(200)
        dev.reset_memory()
        assert dev.allocated_bytes == 0
        assert dev.free_bytes == dev.memory_capacity

    def test_peak_allocation_tracked(self):
        dev = GPUDevice(K40)
        a = dev.malloc(500)
        dev.malloc(300)
        dev.free(a)
        assert dev.profiler.peak_allocated_bytes == 800

    def test_negative_allocation_rejected(self):
        dev = GPUDevice(K40)
        with pytest.raises(ValueError):
            dev.malloc(-1)

    def test_invalid_memory_scale_rejected(self):
        with pytest.raises(ValueError):
            GPUDevice(K40, memory_scale=0)


class TestOccupancy:
    def test_cta_count_formula_matches_paper_example(self):
        # Section 5: 110 regs/thread, 128 threads/CTA on K40 -> 4 CTA/SMX,
        # 60 CTAs total (the paper floors 65536 / (110 * 128) = 4.65 -> 4).
        assert compute_cta_count(K40, registers_per_thread=110, threads_per_cta=128) == 60

    def test_cta_count_halves_on_k20(self):
        k40 = compute_cta_count(K40, registers_per_thread=110, threads_per_cta=128)
        k20 = compute_cta_count(K20, registers_per_thread=110, threads_per_cta=128)
        assert k20 < k40

    def test_lower_registers_more_threads(self):
        low = configurable_thread_count(K40, registers_per_thread=50, threads_per_cta=128)
        high = configurable_thread_count(K40, registers_per_thread=110, threads_per_cta=128)
        assert low > high

    def test_occupancy_limited_by_registers(self):
        info = compute_occupancy(K40, registers_per_thread=110, threads_per_cta=128)
        assert info.limited_by == "registers"
        assert info.occupancy < 0.5

    def test_occupancy_limited_by_launch_size(self):
        info = compute_occupancy(
            K40, registers_per_thread=32, threads_per_cta=128, num_ctas=2
        )
        assert info.limited_by == "launch"
        assert info.resident_ctas == 2
        assert info.occupancy < 0.05

    def test_occupancy_full_for_light_kernels(self):
        info = compute_occupancy(K40, registers_per_thread=24, threads_per_cta=128)
        assert info.occupancy == pytest.approx(1.0)

    def test_occupancy_clamped_when_kernel_too_fat(self):
        info = compute_occupancy(K40, registers_per_thread=100_000, threads_per_cta=128)
        assert info.ctas_per_smx == 1
        assert info.limited_by == "registers"

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            compute_occupancy(K40, registers_per_thread=0, threads_per_cta=128)
        with pytest.raises(ValueError):
            compute_cta_count(K40, registers_per_thread=10, threads_per_cta=0)

    def test_resident_warps(self):
        info = compute_occupancy(K40, registers_per_thread=32, threads_per_cta=128)
        assert info.resident_warps == info.resident_threads // 32


class TestKernelAbstraction:
    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            Kernel("bad", registers_per_thread=0)
        with pytest.raises(ValueError):
            Kernel("bad", registers_per_thread=32, threads_per_cta=100)
        with pytest.raises(ValueError):
            Kernel("bad", registers_per_thread=32, shared_mem_per_cta=-1)

    def test_with_registers(self):
        k = Kernel("k", 32)
        k2 = k.with_registers(64)
        assert k2.registers_per_thread == 64
        assert k2.name == k.name

    def test_work_estimate_validation(self):
        with pytest.raises(ValueError):
            WorkEstimate(divergence_fraction=1.5)
        with pytest.raises(ValueError):
            WorkEstimate(coalesced_bytes=-1)
        with pytest.raises(ValueError):
            WorkEstimate(atomic_ops=1, atomic_contention=0.5)

    def test_work_estimate_nonzero(self):
        assert not WorkEstimate().nonzero()
        assert WorkEstimate(compute_ops=1).nonzero()

    def test_merged_with_sums_components(self):
        a = WorkEstimate(coalesced_bytes=100, compute_ops=10, atomic_ops=5,
                         atomic_contention=2.0)
        b = WorkEstimate(coalesced_bytes=50, compute_ops=30, atomic_ops=15,
                         atomic_contention=4.0)
        merged = a.merged_with(b)
        assert merged.coalesced_bytes == 150
        assert merged.compute_ops == 40
        assert merged.atomic_ops == 20
        # Contention is op-weighted: (5*2 + 15*4) / 20 = 3.5
        assert merged.atomic_contention == pytest.approx(3.5)

    def test_merged_divergence_weighted_by_compute(self):
        a = WorkEstimate(compute_ops=10, divergence_fraction=0.0)
        b = WorkEstimate(compute_ops=30, divergence_fraction=0.4)
        assert a.merged_with(b).divergence_fraction == pytest.approx(0.3)


class TestCostModel:
    def _launch(self, device, **work_kwargs):
        kernel = Kernel("test", 32)
        return device.launch(KernelLaunch(kernel=kernel, work=WorkEstimate(**work_kwargs)))

    def test_empty_work_costs_only_launch_overhead(self):
        dev = GPUDevice(K40)
        result = self._launch(dev)
        assert result.total_us == pytest.approx(K40.kernel_launch_overhead_us)

    def test_fused_continuation_skips_launch_overhead(self):
        dev = GPUDevice(K40)
        kernel = Kernel("fused", 48)
        result = dev.launch(
            KernelLaunch(kernel=kernel, work=WorkEstimate(compute_ops=1000),
                         fused_continuation=True)
        )
        assert result.launch_overhead_us == 0.0
        assert result.total_us > 0

    def test_more_memory_traffic_costs_more(self):
        dev = GPUDevice(K40)
        small = self._launch(dev, coalesced_bytes=1e6)
        large = self._launch(dev, coalesced_bytes=1e8)
        assert large.memory_us > small.memory_us

    def test_scattered_traffic_costs_more_than_coalesced(self):
        dev = GPUDevice(K40)
        # Same useful bytes: 1e6 coalesced vs 1e6/4 scattered 4-byte accesses.
        coalesced = self._launch(dev, coalesced_bytes=1e6)
        scattered = self._launch(dev, scattered_transactions=250_000)
        assert scattered.memory_us > coalesced.memory_us

    def test_atomics_add_cost_and_contention_hurts(self):
        dev = GPUDevice(K40)
        none = self._launch(dev, compute_ops=1e6)
        some = self._launch(dev, compute_ops=1e6, atomic_ops=1e5)
        contended = self._launch(dev, compute_ops=1e6, atomic_ops=1e5,
                                 atomic_contention=64.0)
        assert some.total_us > none.total_us
        assert contended.atomic_us > some.atomic_us

    def test_divergence_increases_compute_time(self):
        dev = GPUDevice(K40)
        converged = self._launch(dev, compute_ops=1e7)
        diverged = self._launch(dev, compute_ops=1e7, divergence_fraction=0.9)
        assert diverged.compute_us > converged.compute_us

    def test_fat_kernel_slower_than_lean_kernel(self):
        dev = GPUDevice(K40)
        work = WorkEstimate(compute_ops=5e7, coalesced_bytes=5e7)
        lean = dev.launch(KernelLaunch(kernel=Kernel("lean", 48), work=work))
        fat = dev.launch(KernelLaunch(kernel=Kernel("fat", 110), work=work))
        assert fat.busy_us > lean.busy_us

    def test_p100_faster_than_k20(self):
        work = WorkEstimate(compute_ops=1e7, coalesced_bytes=1e8)
        kernel = Kernel("k", 48)
        t_k20 = GPUDevice(K20).launch(KernelLaunch(kernel=kernel, work=work)).total_us
        t_p100 = GPUDevice(P100).launch(KernelLaunch(kernel=kernel, work=work)).total_us
        assert t_p100 < t_k20

    def test_estimate_does_not_record(self):
        dev = GPUDevice(K40)
        dev.estimate(KernelLaunch(kernel=Kernel("k", 32), work=WorkEstimate()))
        assert dev.profiler.launch_count() == 0
        dev.launch(KernelLaunch(kernel=Kernel("k", 32), work=WorkEstimate()))
        assert dev.profiler.launch_count() == 1

    def test_profiler_breakdown_and_summary(self):
        dev = GPUDevice(K40)
        self._launch(dev, compute_ops=1e6, coalesced_bytes=1e6, atomic_ops=100)
        breakdown = dev.profiler.breakdown()
        assert breakdown["compute_us"] > 0
        assert breakdown["memory_us"] > 0
        summary = dev.profiler.summary()
        assert summary["launches"] == 1
        assert summary["device"] == "K40"

    def test_profiler_by_kernel_queries(self):
        dev = GPUDevice(K40)
        kernel_a = Kernel("alpha", 32)
        kernel_b = Kernel("beta", 32)
        dev.launch(KernelLaunch(kernel=kernel_a, work=WorkEstimate(compute_ops=1e6)))
        dev.launch(KernelLaunch(kernel=kernel_b, work=WorkEstimate(compute_ops=1e6)))
        dev.launch(KernelLaunch(kernel=kernel_a, work=WorkEstimate(compute_ops=1e6),
                                fused_continuation=True))
        assert dev.profiler.launches_by_kernel() == {"alpha": 1, "beta": 1}
        assert dev.profiler.phase_count() == 3
        assert dev.profiler.fraction_in("alpha") > 0.5
        assert dev.profiler.launch_count(include_fused=True) == 3

    def test_cta_count_for_kernel(self):
        dev = GPUDevice(K40)
        assert dev.cta_count_for(Kernel("k", 110)) == 60
