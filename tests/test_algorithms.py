"""Correctness tests for every ACC algorithm against the reference oracles,
across several graph families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, PageRank, KCore, WCC, SpMV, BeliefPropagation, ALGORITHMS
from repro.baselines import reference as ref
from repro.core.engine import SIMDXEngine
from repro.graph import generators as gen
from tests.conftest import assert_distances_equal

GRAPH_BUILDERS = {
    "chain": lambda: gen.chain_graph(50, seed=1),
    "star": lambda: gen.star_graph(100, seed=2),
    "grid": lambda: gen.grid_graph(10, 10, seed=3),
    "rmat": lambda: gen.rmat_graph(9, 8, seed=7),
    "clusters": lambda: gen.two_level_graph(3, 12, 8, seed=9),
    "road": lambda: gen.road_network_graph(16, 16, seed=11),
}


@pytest.fixture(params=list(GRAPH_BUILDERS), scope="module")
def any_graph(request):
    return GRAPH_BUILDERS[request.param]()


def run(graph, algorithm, **params):
    return SIMDXEngine(graph).run(algorithm, **params)


class TestBFS:
    def test_matches_reference_on_all_graphs(self, any_graph):
        src = int(np.argmax(any_graph.out_degrees()))
        result = run(any_graph, BFS(source=src))
        assert not result.failed
        assert np.array_equal(result.values, ref.bfs_levels(any_graph, src))

    def test_levels_monotone_along_edges(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        levels = run(rmat_graph, BFS(source=src)).values
        for u, v, _ in rmat_graph.edges():
            if levels[u] >= 0 and levels[v] >= 0:
                assert abs(levels[u] - levels[v]) <= 1

    def test_source_level_zero(self, grid_graph):
        levels = run(grid_graph, BFS(source=5)).values
        assert levels[5] == 0

    def test_chain_levels_are_positions(self):
        g = gen.chain_graph(30, seed=1)
        levels = run(g, BFS(source=0)).values
        assert np.array_equal(levels, np.arange(30))

    def test_star_two_hops(self):
        g = gen.star_graph(50, seed=1)
        levels = run(g, BFS(source=1)).values
        assert levels[1] == 0 and levels[0] == 1
        assert np.all(levels[2:] == 2)

    def test_iteration_count_equals_eccentricity_plus_one(self):
        g = gen.chain_graph(20, seed=1)
        result = run(g, BFS(source=0))
        # 19 levels to fill, plus the final iteration that discovers nothing.
        assert result.iterations in (19, 20)


class TestSSSP:
    def test_matches_dijkstra_on_all_graphs(self, any_graph):
        src = int(np.argmax(any_graph.out_degrees()))
        result = run(any_graph, SSSP(source=src))
        assert_distances_equal(result.values, ref.sssp_distances(any_graph, src))

    def test_delta_stepping_matches_default(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        plain = run(rmat_graph, SSSP(source=src)).values
        bucketed = run(rmat_graph, SSSP(source=src, delta=16.0)).values
        assert_distances_equal(plain, bucketed)

    def test_delta_stepping_on_weighted_grid(self, grid_graph):
        src = 0
        result = run(grid_graph, SSSP(source=src, delta=8.0))
        assert_distances_equal(result.values, ref.sssp_distances(grid_graph, src))

    def test_distances_bounded_by_hops_times_max_weight(self, grid_graph):
        src = 0
        dist = run(grid_graph, SSSP(source=src)).values
        hops = ref.bfs_levels(grid_graph, src)
        max_w = float(grid_graph.out_csr.weights.max())
        reachable = hops >= 0
        assert np.all(dist[reachable] <= hops[reachable] * max_w + 1e-9)

    def test_triangle_inequality_along_edges(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        dist = run(rmat_graph, SSSP(source=src)).values
        for u, v, w in rmat_graph.edges():
            if np.isfinite(dist[u]):
                assert dist[v] <= dist[u] + w + 1e-6

    def test_sssp_revisits_vertices_unlike_bfs(self, tiny_graph):
        # Figure 1: SSSP updates vertex b in iterations 1 and 3.
        result = run(tiny_graph, SSSP(source=0))
        assert result.values[1] == pytest.approx(4.0)   # a->d->e->b = 1+2+1
        assert result.values[2] == pytest.approx(5.0)   # ...->c
        assert result.iterations >= 3


class TestPageRank:
    def test_matches_power_iteration(self, any_graph):
        result = run(any_graph, PageRank(tolerance=1e-7))
        expected = ref.pagerank_scores(any_graph)
        assert np.abs(result.values - expected).max() < 1e-4

    def test_ranks_sum_to_one(self, rmat_graph):
        ranks = run(rmat_graph, PageRank()).values
        assert ranks.sum() == pytest.approx(1.0)
        assert np.all(ranks >= 0)

    def test_hub_ranks_highest_in_star(self):
        g = gen.star_graph(100, seed=1)
        ranks = run(g, PageRank(tolerance=1e-8)).values
        assert np.argmax(ranks) == 0

    def test_tighter_tolerance_more_iterations(self, rmat_graph):
        loose = run(rmat_graph, PageRank(tolerance=1e-2))
        tight = run(rmat_graph, PageRank(tolerance=1e-6))
        assert tight.iterations > loose.iterations

    def test_damping_changes_result(self, rmat_graph):
        a = run(rmat_graph, PageRank(damping=0.5, tolerance=1e-7)).values
        b = run(rmat_graph, PageRank(damping=0.95, tolerance=1e-7)).values
        assert not np.allclose(a, b)


class TestKCore:
    @pytest.mark.parametrize("k", [2, 4, 8, 16])
    def test_membership_matches_reference(self, rmat_graph, k):
        algo = KCore(k=k)
        result = run(rmat_graph, algo)
        assert np.array_equal(
            algo.core_membership(result.values), ref.kcore_membership(rmat_graph, k)
        )

    def test_clustered_graph_core_by_construction(self):
        # Each cluster is a K12, so every vertex survives k=11 peeling.
        g = gen.two_level_graph(3, 12, 0, seed=5)
        algo = KCore(k=11)
        result = run(g, algo)
        assert algo.core_membership(result.values).all()

    def test_chain_has_no_2core(self):
        g = gen.chain_graph(30, seed=1)
        algo = KCore(k=2)
        result = run(g, algo)
        assert not algo.core_membership(result.values).any()

    def test_survivors_have_k_surviving_neighbors(self, any_graph):
        k = 4
        algo = KCore(k=k)
        result = run(any_graph, algo)
        members = algo.core_membership(result.values)
        for v in np.nonzero(members)[0]:
            nbrs = any_graph.out_neighbors(int(v))
            assert int(np.count_nonzero(members[nbrs])) >= k

    def test_k_parameter_via_init(self, rmat_graph):
        algo = KCore(k=4)
        result = SIMDXEngine(rmat_graph).run(algo, k=8)
        assert algo.k == 8
        assert np.array_equal(
            algo.core_membership(result.values), ref.kcore_membership(rmat_graph, 8)
        )


class TestWCC:
    def test_matches_reference_on_clusters(self):
        g = gen.two_level_graph(4, 8, 0, seed=3)
        result = run(g, WCC())
        assert np.array_equal(result.values, ref.wcc_labels(g))
        assert np.unique(result.values).size == 4

    def test_connected_graph_single_label(self, grid_graph):
        labels = run(grid_graph, WCC()).values
        assert np.unique(labels).size == 1
        assert labels[0] == 0

    def test_labels_are_component_minima(self, clustered_graph):
        labels = run(clustered_graph, WCC()).values
        expected = ref.wcc_labels(clustered_graph)
        assert np.array_equal(labels, expected)


class TestSpMVAndBP:
    def test_spmv_matches_reference(self, rmat_graph):
        x = np.random.default_rng(8).random(rmat_graph.num_vertices)
        result = run(rmat_graph, SpMV(x=x))
        assert np.allclose(result.values, ref.spmv_product(rmat_graph, x))
        assert result.iterations == 1

    def test_spmv_zero_vector(self, grid_graph):
        x = np.zeros(grid_graph.num_vertices)
        result = run(grid_graph, SpMV(x=x))
        assert np.allclose(result.values, 0.0)

    def test_spmv_rejects_bad_vector(self, grid_graph):
        with pytest.raises(ValueError):
            SpMV(x=np.ones(3)).init(grid_graph)

    def test_bp_matches_reference(self, rmat_graph):
        algo = BeliefPropagation(num_iterations=8, damping=0.5)
        result = run(rmat_graph, algo)
        expected = ref.bp_beliefs(
            rmat_graph, algo._prior, damping=0.5, num_iterations=8
        )
        assert np.allclose(result.values, expected)
        assert result.iterations == 8

    def test_bp_custom_priors(self, grid_graph):
        priors = np.ones(grid_graph.num_vertices)
        algo = BeliefPropagation(num_iterations=5)
        result = SIMDXEngine(grid_graph).run(algo, priors=priors)
        expected = ref.bp_beliefs(grid_graph, priors, damping=0.5, num_iterations=5)
        assert np.allclose(result.values, expected)

    def test_bp_beliefs_normalized(self, rmat_graph):
        result = run(rmat_graph, BeliefPropagation(num_iterations=5))
        assert result.values.sum() == pytest.approx(1.0)

    def test_bp_parameter_validation(self):
        with pytest.raises(ValueError):
            BeliefPropagation(damping=1.5)
        with pytest.raises(ValueError):
            BeliefPropagation(num_iterations=0)

    def test_bp_rejects_bad_priors(self, grid_graph):
        algo = BeliefPropagation()
        with pytest.raises(ValueError):
            algo.init(grid_graph, priors=np.ones(3))
        with pytest.raises(ValueError):
            algo.init(grid_graph, priors=-np.ones(grid_graph.num_vertices))


class TestRegistry:
    def test_registry_names_match_instances(self):
        for name, cls in ALGORITHMS.items():
            assert cls().name == name

    def test_registry_contains_paper_algorithms(self):
        assert {"bfs", "sssp", "pagerank", "kcore", "bp", "spmv", "wcc"} == set(ALGORITHMS)
