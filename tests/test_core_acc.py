"""Tests for the ACC programming model abstractions and combine operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, PageRank, KCore, WCC
from repro.core.acc import ACCAlgorithm, CombineKind, CombineOp, InitialState


class TestCombineOp:
    def test_identities(self):
        assert CombineOp.MIN.identity == np.inf
        assert CombineOp.MAX.identity == -np.inf
        assert CombineOp.SUM.identity == 0.0

    def test_reduce_scalar(self):
        values = np.array([3.0, 1.0, 2.0])
        assert CombineOp.MIN.reduce(values) == 1.0
        assert CombineOp.MAX.reduce(values) == 3.0
        assert CombineOp.SUM.reduce(values) == 6.0

    def test_reduce_empty_returns_identity(self):
        empty = np.array([])
        for op in CombineOp:
            assert op.reduce(empty) == op.identity

    @pytest.mark.parametrize("op", list(CombineOp))
    def test_segment_reduce_matches_loop(self, op):
        rng = np.random.default_rng(11)
        values = rng.random(500) * 10
        segments = rng.integers(0, 40, size=500)
        result = op.segment_reduce(values, segments, 40)
        for s in range(40):
            mask = segments == s
            if mask.any():
                assert result[s] == pytest.approx(op.reduce(values[mask]))
            else:
                assert result[s] == op.identity

    def test_segment_reduce_empty(self):
        out = CombineOp.MIN.segment_reduce(np.array([]), np.array([], dtype=int), 5)
        assert np.all(np.isinf(out))

    def test_segment_reduce_single_segment(self):
        out = CombineOp.SUM.segment_reduce(
            np.array([1.0, 2.0, 3.0]), np.array([2, 2, 2]), 4
        )
        assert out[2] == 6.0
        assert out[0] == 0.0

    def test_ufunc_mapping(self):
        assert CombineOp.MIN.ufunc is np.minimum
        assert CombineOp.SUM.ufunc is np.add


class TestAlgorithmClassification:
    """The combine-class table from Section 3.2 / Section 6."""

    def test_voting_algorithms(self):
        assert BFS().combine_kind is CombineKind.VOTING
        assert WCC().combine_kind is CombineKind.VOTING

    def test_aggregation_algorithms(self):
        assert SSSP().combine_kind is CombineKind.AGGREGATION
        assert PageRank().combine_kind is CombineKind.AGGREGATION
        assert KCore().combine_kind is CombineKind.AGGREGATION

    def test_combine_operators(self):
        assert BFS().combine_op is CombineOp.MIN
        assert SSSP().combine_op is CombineOp.MIN
        assert PageRank().combine_op is CombineOp.SUM
        assert KCore().combine_op is CombineOp.SUM

    def test_pull_starters(self):
        assert PageRank().starts_in_pull
        assert KCore().starts_in_pull
        assert not BFS().starts_in_pull
        assert not SSSP().starts_in_pull

    def test_describe(self):
        d = SSSP().describe()
        assert d["name"] == "sssp"
        assert d["combine_kind"] == "aggregation"
        assert d["uses_weights"] is True


class TestScalarVectorAgreement:
    """The scalar paper semantics must agree with the vectorized forms."""

    def test_sssp_compute_scalar_matches_vector(self, tiny_graph):
        algo = SSSP(source=0)
        state = algo.init(tiny_graph)
        metadata = state.metadata
        metadata[0] = 0.0
        # Edge a->b with weight 5 offers distance 5 to b.
        assert algo.compute(0, 1, 5.0, metadata, tiny_graph) == pytest.approx(5.0)
        # An edge into an already-closer vertex produces no update (NaN).
        metadata[1] = 1.0
        assert np.isnan(algo.compute(0, 1, 5.0, metadata, tiny_graph))

    def test_bfs_compute_offers_level_plus_one(self, tiny_graph):
        algo = BFS(source=0)
        metadata = algo.init(tiny_graph).metadata
        assert algo.compute(0, 1, 1.0, metadata, tiny_graph) == pytest.approx(1.0)

    def test_active_scalar_matches_mask(self, tiny_graph):
        algo = SSSP(source=0)
        metadata = algo.init(tiny_graph).metadata
        prev = metadata.copy()
        metadata[3] = 1.0
        mask = algo.active_mask(metadata, prev)
        for v in range(tiny_graph.num_vertices):
            assert algo.active(v, metadata, prev) == bool(mask[v])

    def test_combine_scalar_uses_operator(self):
        algo = SSSP()
        assert algo.combine(np.array([4.0, 2.0, np.nan])) == pytest.approx(2.0)
        algo2 = PageRank()
        assert algo2.combine(np.array([1.0, 2.0])) == pytest.approx(3.0)


class TestInitialState:
    def test_bfs_init(self, tiny_graph):
        state = BFS(source=4).init(tiny_graph)
        assert isinstance(state, InitialState)
        assert state.metadata[4] == 0.0
        assert np.isinf(state.metadata[0])
        assert np.array_equal(state.frontier, [4])

    def test_bfs_source_override(self, tiny_graph):
        state = BFS(source=0).init(tiny_graph, source=2)
        assert state.metadata[2] == 0.0

    def test_bfs_invalid_source(self, tiny_graph):
        with pytest.raises(ValueError):
            BFS(source=99).init(tiny_graph)

    def test_sssp_invalid_source(self, tiny_graph):
        with pytest.raises(ValueError):
            SSSP(source=-1).init(tiny_graph)

    def test_kcore_initial_frontier_is_low_degree_vertices(self, tiny_graph):
        algo = KCore(k=2)
        state = algo.init(tiny_graph)
        degrees = tiny_graph.out_degrees()
        expected = np.nonzero(degrees < 2)[0]
        assert np.array_equal(np.sort(state.frontier), np.sort(expected))

    def test_kcore_invalid_k(self):
        with pytest.raises(ValueError):
            KCore(k=0)

    def test_pagerank_all_vertices_active_initially(self, tiny_graph):
        state = PageRank().init(tiny_graph)
        assert state.frontier.size == tiny_graph.num_vertices
        assert np.allclose(state.metadata, 0.15)

    def test_pagerank_parameter_validation(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.5)
        with pytest.raises(ValueError):
            PageRank(tolerance=0.0)

    def test_sssp_delta_validation(self):
        with pytest.raises(ValueError):
            SSSP(delta=0.0)

    def test_default_hooks(self, tiny_graph):
        algo = BFS(source=0)
        state = algo.init(tiny_graph)
        # Default hooks: converged is True, on_frontier_expanded is a no-op,
        # vertex_value is overridden by BFS to produce int levels.
        assert algo.converged(state.metadata, state.metadata, 1)
        algo.on_frontier_expanded(state.frontier, state.metadata)
        assert algo.vertex_value(state.metadata).dtype == np.int64
