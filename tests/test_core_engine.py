"""Tests for the SIMD-X execution engine: correctness invariance across
configurations, traces, failure modes and cost-model behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, KCore, PageRank
from repro.baselines import reference as ref
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.core.filters import FilterMode
from repro.core.fusion import FusionStrategy
from repro.core.metrics import aggregate_time_us
from repro.gpu.device import GPUDevice, K40
from repro.graph import generators as gen
from tests.conftest import assert_distances_equal


class TestFunctionalCorrectness:
    def test_bfs_matches_reference(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        result = SIMDXEngine(rmat_graph).run(BFS(source=src))
        assert np.array_equal(result.values, ref.bfs_levels(rmat_graph, src))

    def test_sssp_matches_dijkstra(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        result = SIMDXEngine(rmat_graph).run(SSSP(source=src))
        assert_distances_equal(result.values, ref.sssp_distances(rmat_graph, src))

    @pytest.mark.parametrize("filter_mode", [FilterMode.JIT, FilterMode.BALLOT,
                                             FilterMode.BATCH, FilterMode.STRIDED,
                                             FilterMode.ATOMIC])
    def test_results_invariant_across_filters(self, rmat_graph, filter_mode):
        src = int(np.argmax(rmat_graph.out_degrees()))
        config = EngineConfig(filter_mode=filter_mode)
        result = SIMDXEngine(rmat_graph, config=config).run(BFS(source=src))
        assert not result.failed
        assert np.array_equal(result.values, ref.bfs_levels(rmat_graph, src))

    @pytest.mark.parametrize("fusion", list(FusionStrategy))
    def test_results_invariant_across_fusion(self, rmat_graph, fusion):
        src = int(np.argmax(rmat_graph.out_degrees()))
        config = EngineConfig(fusion=fusion)
        result = SIMDXEngine(rmat_graph, config=config).run(SSSP(source=src))
        assert_distances_equal(result.values, ref.sssp_distances(rmat_graph, src))

    def test_results_invariant_across_devices(self, rmat_graph):
        from repro.gpu.device import K20, P100

        src = int(np.argmax(rmat_graph.out_degrees()))
        values = []
        for spec in (K20, K40, P100):
            result = SIMDXEngine(rmat_graph, device=GPUDevice(spec)).run(BFS(source=src))
            values.append(result.values)
        assert np.array_equal(values[0], values[1])
        assert np.array_equal(values[1], values[2])

    def test_atomic_combine_pricing_does_not_change_results(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        a = SIMDXEngine(rmat_graph, config=EngineConfig(atomic_combine=True)).run(BFS(src))
        b = SIMDXEngine(rmat_graph, config=EngineConfig(atomic_combine=False)).run(BFS(src))
        assert np.array_equal(a.values, b.values)
        assert a.elapsed_us > b.elapsed_us

    def test_unreachable_vertices_stay_unreached(self):
        g = gen.two_level_graph(2, 10, 0, seed=3)  # two disconnected clusters
        result = SIMDXEngine(g).run(BFS(source=0))
        assert np.all(result.values[10:] == -1)
        assert np.all(result.values[:10] >= 0)

    def test_isolated_source_terminates_immediately(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(4, [(1, 2)], weights=[1])
        result = SIMDXEngine(g).run(BFS(source=0))
        assert result.iterations <= 1
        assert result.values[0] == 0
        assert np.all(result.values[1:] == -1)


class TestRunResultContents:
    def test_run_result_fields(self, rmat_graph):
        result = SIMDXEngine(rmat_graph).run(BFS(source=0))
        assert result.system == "SIMD-X"
        assert result.algorithm == "bfs"
        assert result.device == "K40"
        assert result.iterations == len(result.iteration_records)
        assert len(result.filter_trace) == result.iterations
        assert len(result.direction_trace) == result.iterations
        assert result.elapsed_us > 0
        assert result.kernel_launches > 0

    def test_iteration_records_consistent(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        result = SIMDXEngine(rmat_graph).run(SSSP(source=src))
        totals = aggregate_time_us(result.iteration_records)
        component_sum = sum(totals.values())
        assert component_sum == pytest.approx(result.elapsed_us, rel=1e-6)
        for record in result.iteration_records:
            assert record.frontier_vertices > 0
            assert record.total_us > 0

    def test_first_iteration_frontier_is_source(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        result = SIMDXEngine(rmat_graph).run(BFS(source=src))
        assert result.iteration_records[0].frontier_vertices == 1

    def test_extra_metadata(self, rmat_graph):
        result = SIMDXEngine(rmat_graph).run(BFS(source=0))
        assert result.extra["fusion"] == "push_pull"
        assert result.extra["filter_mode"] == "jit"
        assert "direction_switches" in result.extra


class TestFilterBehaviourInEngine:
    def test_jit_uses_online_then_ballot_on_skewed_graph(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        result = SIMDXEngine(rmat_graph).run(BFS(source=src))
        assert "ballot" in result.filter_trace
        # The last iterations (tiny frontier) fall back to the online filter.
        assert result.filter_trace[-1] == "online"
        # Direction-aware selection: pull iterations always run the online
        # filter (a gather worker records at most one destination).
        for record in result.iteration_records:
            if record.direction == "pull":
                assert record.filter_used == "online"

    def test_jit_stays_online_on_high_diameter_graph(self, road_graph):
        result = SIMDXEngine(road_graph).run(BFS(source=0))
        assert set(result.filter_trace) == {"online"}

    def test_online_only_fails_on_skewed_graph(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        config = EngineConfig(filter_mode=FilterMode.ONLINE, overflow_threshold=16)
        result = SIMDXEngine(rmat_graph, config=config).run(BFS(source=src))
        assert result.failed
        assert "overflow" in result.failure_reason

    def test_online_only_succeeds_on_road_graph(self, road_graph):
        config = EngineConfig(filter_mode=FilterMode.ONLINE)
        result = SIMDXEngine(road_graph, config=config).run(BFS(source=0))
        assert not result.failed

    def test_ballot_only_slower_than_jit_on_road_graph(self, road_graph):
        jit = SIMDXEngine(road_graph, config=EngineConfig(filter_mode=FilterMode.JIT))
        ballot = SIMDXEngine(road_graph, config=EngineConfig(filter_mode=FilterMode.BALLOT))
        t_jit = jit.run(BFS(source=0)).elapsed_us
        t_ballot = ballot.run(BFS(source=0)).elapsed_us
        assert t_ballot > t_jit

    def test_kcore_ballots_only_in_early_iterations(self, rmat_graph):
        result = SIMDXEngine(rmat_graph).run(KCore(k=8))
        if "ballot" in result.filter_trace:
            last_ballot = max(i for i, f in enumerate(result.filter_trace) if f == "ballot")
            assert last_ballot <= len(result.filter_trace) // 2


class TestFusionBehaviourInEngine:
    def test_launch_counts_ordering(self, road_graph):
        """More fusion -> fewer launches; no fusion -> 4 per iteration."""
        counts = {}
        for strategy in FusionStrategy:
            config = EngineConfig(fusion=strategy)
            result = SIMDXEngine(road_graph, config=config).run(BFS(source=0))
            counts[strategy] = (result.kernel_launches, result.iterations)
        none_launches, iters = counts[FusionStrategy.NONE]
        assert none_launches == 4 * iters
        assert counts[FusionStrategy.ALL][0] == 1
        assert 1 <= counts[FusionStrategy.PUSH_PULL][0] <= 1 + 2 * 4

    def test_push_pull_fusion_fastest_on_high_iteration_graph(self, road_graph):
        times = {}
        for strategy in FusionStrategy:
            config = EngineConfig(fusion=strategy)
            times[strategy] = SIMDXEngine(road_graph, config=config).run(
                BFS(source=0)
            ).elapsed_us
        assert times[FusionStrategy.PUSH_PULL] < times[FusionStrategy.NONE]

    def test_direction_trace_clusters(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        result = SIMDXEngine(rmat_graph).run(BFS(source=src))
        assert result.direction_trace[0] == "push"
        # Directions form contiguous phases (no rapid flapping beyond the
        # number of threshold crossings).
        switches = sum(
            1 for a, b in zip(result.direction_trace, result.direction_trace[1:])
            if a != b
        )
        assert switches <= 3


class TestConfigRegressions:
    def test_max_iterations_zero_is_respected(self, rmat_graph):
        """``max_iterations=0`` means zero iterations, not "unset"."""
        config = EngineConfig(max_iterations=0)
        result = SIMDXEngine(rmat_graph, config=config).run(BFS(source=0))
        assert not result.failed
        assert result.iterations == 0
        assert result.iteration_records == []
        # Only the source was initialized; nothing was expanded.
        assert result.values[0] == 0
        assert np.all(result.values[1:] == -1)

    def test_max_iterations_cap_applies(self, rmat_graph):
        config = EngineConfig(max_iterations=2)
        result = SIMDXEngine(rmat_graph, config=config).run(BFS(source=0))
        assert result.iterations <= 2

    def test_engine_is_reentrant(self, rmat_graph):
        """Two runs on one engine match a fresh engine's run exactly (no
        state - fusion residency, task-kernel slot - leaks across runs)."""
        src = int(np.argmax(rmat_graph.out_degrees()))
        engine = SIMDXEngine(rmat_graph)
        first = engine.run(BFS(source=src))
        second = engine.run(BFS(source=src))
        fresh = SIMDXEngine(rmat_graph).run(BFS(source=src))
        assert np.array_equal(first.values, second.values)
        assert second.elapsed_us == pytest.approx(fresh.elapsed_us)
        assert second.kernel_launches == fresh.kernel_launches
        assert second.filter_trace == fresh.filter_trace

    def test_conflicting_direction_config_rejected(self):
        from repro.core.direction import Direction

        with pytest.raises(ValueError):
            EngineConfig(direction_auto=True, forced_direction=Direction.PULL)

    def test_manual_direction_keeps_selector_consistent(self, rmat_graph):
        """Pinning the direction goes through the selector's state machine,
        so switch counts and phase lengths stay truthful."""
        from repro.core.direction import Direction

        for direction in Direction:
            config = EngineConfig(
                direction_auto=False, forced_direction=direction
            )
            result = SIMDXEngine(rmat_graph, config=config).run(BFS(source=0))
            assert set(result.direction_trace) == {direction.value}
            assert result.extra["direction_switches"] == 0


class TestMemoryFailureModes:
    def test_oom_on_graph_larger_than_device(self, rmat_graph):
        rmat_graph.meta["paper_vertices"] = 10**9
        rmat_graph.meta["paper_edges"] = 10**11
        try:
            result = SIMDXEngine(rmat_graph).run(BFS(source=0))
            assert result.failed
            assert "OOM" in result.failure_reason
        finally:
            rmat_graph.meta.pop("paper_vertices")
            rmat_graph.meta.pop("paper_edges")

    def test_memory_released_after_run(self, rmat_graph):
        engine = SIMDXEngine(rmat_graph)
        engine.run(BFS(source=0))
        assert engine.device.allocated_bytes == 0

    def test_batch_filter_oom_on_modeled_large_graph(self, rmat_graph):
        rmat_graph.meta["paper_edges"] = 2 * 10**9
        rmat_graph.meta["paper_vertices"] = 10**7
        try:
            config = EngineConfig(filter_mode=FilterMode.BATCH)
            result = SIMDXEngine(rmat_graph, config=config).run(
                BFS(source=int(np.argmax(rmat_graph.out_degrees())))
            )
            assert result.failed and "OOM" in result.failure_reason
        finally:
            rmat_graph.meta.pop("paper_edges")
            rmat_graph.meta.pop("paper_vertices")


class TestConfigKnobs:
    def test_max_iterations_caps_run(self, road_graph):
        config = EngineConfig(max_iterations=3)
        result = SIMDXEngine(road_graph, config=config).run(BFS(source=0))
        assert result.iterations == 3

    def test_overflow_threshold_changes_filter_choice(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        low = SIMDXEngine(rmat_graph, config=EngineConfig(overflow_threshold=1)).run(
            BFS(source=src)
        )
        high = SIMDXEngine(
            rmat_graph, config=EngineConfig(overflow_threshold=10_000)
        ).run(BFS(source=src))
        assert low.filter_trace.count("ballot") >= high.filter_trace.count("ballot")

    def test_pagerank_converges_and_matches_power_iteration(self, rmat_graph):
        result = SIMDXEngine(rmat_graph).run(PageRank(tolerance=1e-7))
        expected = ref.pagerank_scores(rmat_graph)
        assert not result.failed
        assert np.abs(result.values - expected).max() < 1e-4

    def test_separators_do_not_change_results(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        a = SIMDXEngine(
            rmat_graph,
            config=EngineConfig(small_medium_separator=4, medium_large_separator=128),
        ).run(BFS(source=src))
        b = SIMDXEngine(
            rmat_graph,
            config=EngineConfig(small_medium_separator=128, medium_large_separator=2048),
        ).run(BFS(source=src))
        assert np.array_equal(a.values, b.values)
