"""Result-cache tests (``src/repro/cache/``).

Covers the cross-query reuse contract from docs/caching.md:

* exact hits serve the stored bits, stale entries are never served
  directly (repair-or-fallback is the caller's decision);
* LRU eviction respects capacity; landmark-pinned entries are exempt;
* promotion at ``landmark_threshold`` hits, bounded by
  ``landmark_capacity``;
* ``refresh_landmarks`` repairs pinned entries through an update
  receipt, bit-identically to a from-scratch run;
* :class:`CachedQueryEngine` end-to-end: hit / repair / miss outcomes
  all return from-scratch bits; pruned receipt chains and over-long
  chains fall back to the exact miss path.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.algorithms import ALGORITHMS, BFS
from repro.cache import CachedQueryEngine, ResultCache
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.dyn import DynamicGraph, EdgeUpdateBatch
from repro.graph import generators as gen

SANITIZE = os.environ.get("REPRO_SANITIZE", "") == "1"


def _config(**kwargs) -> EngineConfig:
    kwargs.setdefault("sanitize", SANITIZE)
    return EngineConfig(**kwargs)


@pytest.fixture
def graph():
    return gen.random_uniform_graph(160, 1000, seed=17, name="cache-g")


# ----------------------------------------------------------------------
# ResultCache mechanics
# ----------------------------------------------------------------------
def test_lookup_classifies_hit_stale_miss(graph):
    cache = ResultCache()
    values = np.arange(5.0)
    cache.store("bfs", 3, None, values, version=0)
    assert cache.lookup("bfs", 3, None, version=0).version == 0
    stale = cache.lookup("bfs", 3, None, version=2)
    assert stale is not None and stale.version == 0
    assert cache.lookup("bfs", 4, None, version=0) is None
    assert cache.stats["hits"] == 1
    assert cache.stats["stale_hits"] == 1
    assert cache.stats["misses"] == 1


def test_params_distinguish_entries(graph):
    cache = ResultCache()
    cache.store("sssp", 3, {"delta": 2.0}, np.zeros(3), version=0)
    assert cache.lookup("sssp", 3, {"delta": 4.0}, version=0) is None
    assert cache.lookup("sssp", 3, {"delta": 2.0}, version=0) is not None


def test_lru_eviction_at_capacity():
    cache = ResultCache(capacity=3)
    for source in range(4):
        cache.store("bfs", source, None, np.zeros(2), version=0)
    assert len(cache) == 3
    assert cache.stats["evictions"] == 1
    # Source 0 was the least recently used.
    assert cache.lookup("bfs", 0, None, version=0) is None
    assert cache.lookup("bfs", 3, None, version=0) is not None


def test_pinned_entries_survive_eviction():
    cache = ResultCache(capacity=2, landmark_threshold=1)
    cache.store("bfs", 0, None, np.zeros(2), version=0)
    cache.lookup("bfs", 0, None, version=0)  # 1 hit -> promoted
    assert cache.landmarks == 1
    for source in range(1, 4):
        cache.store("bfs", source, None, np.zeros(2), version=0)
    assert cache.lookup("bfs", 0, None, version=0) is not None


def test_landmark_capacity_bounds_promotion():
    cache = ResultCache(landmark_threshold=1, landmark_capacity=2)
    for source in range(4):
        cache.store("bfs", source, None, np.zeros(2), version=0)
        cache.lookup("bfs", source, None, version=0)
    assert cache.landmarks == 2


def test_drop_stale_keeps_pinned_and_current():
    cache = ResultCache(landmark_threshold=1)
    cache.store("bfs", 0, None, np.zeros(2), version=0)
    cache.lookup("bfs", 0, None, version=0)  # pinned
    cache.store("bfs", 1, None, np.zeros(2), version=0)
    cache.store("bfs", 2, None, np.zeros(2), version=1)
    dropped = cache.drop_stale(1)
    assert dropped == 1
    assert cache.lookup("bfs", 0, None, version=1) is not None  # pinned
    assert cache.lookup("bfs", 1, None, version=1) is None      # dropped
    assert cache.lookup("bfs", 2, None, version=1) is not None  # current


def test_refresh_landmarks_matches_scratch(graph):
    cache = ResultCache(landmark_threshold=1)
    config = _config()
    dyn = DynamicGraph(graph)
    values = SIMDXEngine(graph, config=config).run(BFS(source=5)).values
    cache.store("bfs", 5, {}, values, version=0)
    cache.lookup("bfs", 5, {}, version=0)  # promote to landmark
    receipt = dyn.apply(EdgeUpdateBatch.of(
        inserts=[(5, 150), (7, 90)], deletes=[graph.to_edge_array()[0]]
    ))
    refreshed = cache.refresh_landmarks(
        receipt, algorithms=ALGORITHMS, config=config
    )
    assert refreshed == 1
    entry = cache.lookup("bfs", 5, {}, version=1)
    assert entry.version == 1
    scratch = SIMDXEngine(receipt.new_graph, config=config).run(BFS(source=5))
    assert np.array_equal(entry.values, scratch.values)


# ----------------------------------------------------------------------
# CachedQueryEngine end-to-end
# ----------------------------------------------------------------------
def test_query_outcomes_hit_repair_miss(graph):
    qe = CachedQueryEngine(graph, config=_config())
    first = qe.query("bfs", 5)
    assert first.outcome == "miss"
    second = qe.query("bfs", 5)
    assert second.outcome == "hit"
    np.testing.assert_array_equal(first.values, second.values)

    qe.update(inserts=[(5, 150)], refresh_landmarks=False)
    third = qe.query("bfs", 5)
    assert third.outcome == "repair"
    scratch = SIMDXEngine(qe.dyn.snapshot(), config=_config()).run(
        BFS(source=5)
    )
    np.testing.assert_array_equal(third.values, scratch.values)
    # The repair stored the refreshed entry: next lookup is an exact hit.
    assert qe.query("bfs", 5).outcome == "hit"


def test_every_outcome_is_bit_identical_to_scratch(graph):
    qe = CachedQueryEngine(graph, config=_config(sanitize=True))
    rng = np.random.default_rng(23)
    for round_idx in range(3):
        for source in (5, 9):
            for name in ("bfs", "sssp", "wcc"):
                answer = qe.query(name, None if name == "wcc" else source)
                algo = (ALGORITHMS[name]() if name == "wcc"
                        else ALGORITHMS[name](source=source))
                scratch = SIMDXEngine(
                    qe.dyn.snapshot(), config=_config(sanitize=True)
                ).run(algo)
                assert np.array_equal(answer.values, scratch.values), (
                    name, source, round_idx, answer.outcome
                )
        ins = rng.integers(0, graph.num_vertices, size=(4, 2))
        ins = ins[ins[:, 0] != ins[:, 1]]
        edges = qe.dyn.snapshot().to_edge_array()
        qe.update(
            inserts=ins,
            deletes=edges[rng.choice(len(edges), size=2, replace=False)],
        )


def test_unknown_algorithm_raises(graph):
    qe = CachedQueryEngine(graph)
    with pytest.raises(KeyError):
        qe.query("nope", 3)


def test_pruned_receipts_fall_back_to_miss(graph):
    qe = CachedQueryEngine(DynamicGraph(graph, keep_receipts=1))
    qe.query("bfs", 5)
    for i in range(3):  # receipt chain outgrows keep_receipts=1
        qe.update(inserts=[(i, i + 80)], refresh_landmarks=False)
    answer = qe.query("bfs", 5)
    assert answer.outcome == "miss"
    scratch = SIMDXEngine(qe.dyn.snapshot()).run(BFS(source=5))
    np.testing.assert_array_equal(answer.values, scratch.values)


def test_long_repair_chain_falls_back_to_miss(graph):
    qe = CachedQueryEngine(graph, max_repair_chain=2)
    qe.query("bfs", 5)
    for i in range(3):  # 3 receipts > max_repair_chain=2
        qe.update(inserts=[(i, i + 80)], refresh_landmarks=False)
    answer = qe.query("bfs", 5)
    assert answer.outcome == "miss"


def test_update_refreshes_landmarks_eagerly(graph):
    cache = ResultCache(landmark_threshold=2)
    qe = CachedQueryEngine(graph, cache=cache)
    qe.query("bfs", 5)
    qe.query("bfs", 5)
    qe.query("bfs", 5)  # >= 2 hits -> landmark
    assert cache.landmarks == 1
    qe.update(inserts=[(5, 150)])
    # The landmark was repaired during the update: still an exact hit.
    answer = qe.query("bfs", 5)
    assert answer.outcome == "hit"
    scratch = SIMDXEngine(qe.dyn.snapshot()).run(BFS(source=5))
    np.testing.assert_array_equal(answer.values, scratch.values)
    assert cache.stats["landmarks_refreshed"] == 1


def test_stats_merge_cache_and_dyn(graph):
    qe = CachedQueryEngine(graph)
    qe.query("bfs", 5)
    qe.update(inserts=[(0, 80)], refresh_landmarks=False)
    stats = qe.stats
    assert stats["version"] == 1
    assert stats["stores"] == 1
    assert stats["misses"] == 1
